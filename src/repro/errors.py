"""Exception hierarchy for the EVR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GPUConfig`."""


class PipelineError(ReproError):
    """The graphics pipeline was driven in an illegal way.

    Examples: submitting a frame while another frame is mid-render, or
    rendering a tile before the geometry pipeline has finished binning.
    """


class CommandError(ReproError):
    """A malformed draw command or command stream."""


class SceneError(ReproError):
    """A scene or benchmark generator was given invalid parameters."""


class MemoryModelError(ReproError):
    """Invalid parameters or illegal access in the memory-system model."""
