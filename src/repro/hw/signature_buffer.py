"""Rendering Elimination's Signature Buffer and CRC32 signatures.

The Signature Buffer holds, per tile, the finalized signature of the
previous frame and the in-progress signature of the current frame.  A
tile's signature is the streaming CRC32 of the byte encodings of every
primitive sorted into it, in sorting order — so any change in attributes,
order, count or render state changes the signature.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional

from ..geom import ScreenTriangle

EMPTY_SIGNATURE = 0


def primitive_signature(primitive: ScreenTriangle) -> int:
    """CRC32 of one primitive's attribute bytes (computed once, at the
    end of the Geometry Pipeline, as in Figure 2 step 2)."""
    return zlib.crc32(primitive.signature_bytes)


def combine_signature(running: int, primitive_crc: int) -> int:
    """Fold a primitive's CRC into a tile's running signature.

    The paper shifts the running hash by the primitive size and combines;
    an order-sensitive equivalent is to CRC the primitive's CRC bytes into
    the running value.  The running signature additionally carries the
    combine *count* in its upper bits (a count register next to the CRC
    register in hardware terms): the CRC state update ``x -> crc32(b, x)``
    is affine over GF(2) and has fixed points for some blocks ``b`` —
    e.g. ``crc32(b'\\x00' * 4, 0xFFFFFFFF) == 0xFFFFFFFF`` — so without
    the count, appending a primitive could leave a tile's signature
    unchanged and let RE skip a tile whose content changed.
    """
    count = (running >> 32) + 1
    state = zlib.crc32(primitive_crc.to_bytes(4, "little"),
                       running & 0xFFFFFFFF)
    return (count << 32) | state


@dataclass
class _TileSignatures:
    previous: Optional[int] = None   # None: no previous frame, or poisoned
    current: Optional[int] = EMPTY_SIGNATURE  # None: poisoned this frame


class SignatureBuffer:
    """On-chip lookup table with one signature pair per tile."""

    def __init__(self, num_tiles: int):
        self._entries: List[_TileSignatures] = [
            _TileSignatures() for _ in range(num_tiles)
        ]
        self.updates = 0
        self.reads = 0

    def update(self, tile: int, primitive_crc: int) -> None:
        """Fold a primitive's CRC into the tile's current signature
        (Figure 2 step 2)."""
        entry = self._entries[tile]
        if entry.current is not None:
            entry.current = combine_signature(entry.current, primitive_crc)
        self.updates += 1

    def poison(self, tile: int) -> None:
        """Invalidate the tile's current signature.

        Called by the raster pipeline when a *predicted-occluded*
        primitive turned out to contribute to the tile's final image
        (a visibility misprediction).  The signature then no longer
        describes the visible content, so the next frame must not be
        allowed to match against it.  This repair is required for
        pixel-exact correctness — see DESIGN.md ("Correctness repair").
        """
        self._entries[tile].current = None

    def matches_previous(self, tile: int) -> bool:
        """Compare the current and previous frame signatures (step 3).

        Returns False on the first frame (no previous signature) and for
        tiles whose previous-frame signature was poisoned, so no tile is
        ever skipped without evidence.
        """
        entry = self._entries[tile]
        self.reads += 1
        return entry.previous is not None and entry.previous == entry.current

    def current_signature(self, tile: int) -> Optional[int]:
        """The tile's in-progress signature (None when poisoned)."""
        return self._entries[tile].current

    def rotate_frame(self) -> None:
        """End of frame: current signatures become the previous ones."""
        for entry in self._entries:
            entry.previous = entry.current
            entry.current = EMPTY_SIGNATURE
