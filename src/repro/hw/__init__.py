"""Hardware structures of the TBR GPU, baseline and EVR-specific.

Baseline structures (Figure 1): per-tile Z/Color buffers, the Parameter
Buffer with per-tile Display Lists, and Rendering Elimination's Signature
Buffer.  EVR additions (Figure 5): the Layer Buffer, the Layer Generator
Table and the FVP Table.
"""

from .buffers import ColorBuffer, LayerBuffer, ZBuffer
from .parameter_buffer import DisplayList, DisplayListEntry, ParameterBuffer
from .signature_buffer import SignatureBuffer, primitive_signature
from .lgt import LayerGeneratorTable
from .fvp_table import FVPEntry, FVPTable, FVPType

__all__ = [
    "ZBuffer",
    "ColorBuffer",
    "LayerBuffer",
    "ParameterBuffer",
    "DisplayList",
    "DisplayListEntry",
    "SignatureBuffer",
    "primitive_signature",
    "LayerGeneratorTable",
    "FVPTable",
    "FVPEntry",
    "FVPType",
]
