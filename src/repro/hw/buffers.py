"""Per-tile on-chip buffers: Z-buffer, Color Buffer and Layer Buffer.

All three hold one entry per pixel of the tile currently being rendered
and are reset when the raster pipeline moves to the next tile.  They are
numpy-backed because the rasterizer operates on whole coverage masks.

The per-fragment test/write/blend semantics live in
:mod:`repro.kernels.reference` (the scalar kernel backend) — the methods
here delegate to those pure functions, so the buffer classes stay the
stateful wrappers while every backend shares one definition of the
rules.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..kernels import reference as _kernels


class ZBuffer:
    """Per-tile depth storage for the (Early) Depth Test.

    Depth values live in [0, 1] with 0 at the near plane; the buffer is
    cleared to the far value so the first opaque fragment always wins.
    """

    def __init__(self, tile_width: int, tile_height: int, clear_depth: float = 1.0):
        self._clear_depth = clear_depth
        self.depth = np.full((tile_height, tile_width), clear_depth, dtype=np.float64)

    def clear(self) -> None:
        self.depth.fill(self._clear_depth)

    def preload(self, depths: np.ndarray) -> None:
        """Initialize with known depths (used by the oracle Z-prepass)."""
        np.copyto(self.depth, depths)

    def test(
        self,
        mask: np.ndarray,
        fragment_depth: np.ndarray,
        less_equal: bool = False,
    ) -> np.ndarray:
        """Return the sub-mask of fragments passing the depth comparison.

        The default comparison is strict ``less`` (GL_LESS).  The oracle
        Z-prepass pre-fills the buffer with *final* depths, so it tests
        with ``less_equal=True`` to let the visible fragment itself pass.
        """
        return _kernels.depth_test(self.depth, mask, fragment_depth,
                                   less_equal=less_equal)

    def write(self, mask: np.ndarray, fragment_depth: np.ndarray) -> int:
        """Store depths for the masked fragments; returns the write count."""
        return _kernels.depth_write(self.depth, mask, fragment_depth)

    @property
    def z_far(self) -> float:
        """The maximum stored depth — the paper's per-tile ``Z_far``."""
        return float(self.depth.max())


class ColorBuffer:
    """Per-tile RGBA color storage, flushed to DRAM at end of tile."""

    def __init__(
        self,
        tile_width: int,
        tile_height: int,
        clear_color: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 1.0),
    ):
        self._clear_color = np.array(clear_color, dtype=np.float64)
        self.color = np.empty((tile_height, tile_width, 4), dtype=np.float64)
        self.clear()

    def clear(self) -> None:
        self.color[:] = self._clear_color

    def write(self, mask: np.ndarray, rgba: np.ndarray) -> int:
        """Opaque write: replace destination color under ``mask``."""
        return _kernels.color_write(self.color, mask, rgba)

    def blend(self, mask: np.ndarray, rgba: np.ndarray) -> int:
        """Standard alpha blending: ``src*a + dst*(1-a)`` under ``mask``."""
        return _kernels.color_blend(self.color, mask, rgba)

    def snapshot(self) -> np.ndarray:
        """A copy of the tile's colors (for flushing / comparisons)."""
        return self.color.copy()

    @property
    def byte_size(self) -> int:
        """Flush size in bytes (RGBA8 in the real framebuffer)."""
        return self.color.shape[0] * self.color.shape[1] * 4


class LayerBuffer:
    """Per-tile visible-layer tracking (Section V-B of the paper).

    Each entry stores the layer identifier of the opaque fragment that is
    currently visible at that pixel.  It is updated in the blending stage
    only for fully-opaque fragments (alpha == 1).  At end of tile,
    ``L_far`` is the minimum stored layer: the *oldest* layer still
    visible anywhere in the tile.

    The buffer is cleared to layer 0 (the "nothing drawn yet" layer), so a
    pixel never covered by an opaque fragment keeps the tile's prediction
    conservative: no primitive has a layer below 0.
    """

    CLEAR_LAYER = 0

    def __init__(self, tile_width: int, tile_height: int):
        self.layers = np.full(
            (tile_height, tile_width), self.CLEAR_LAYER, dtype=np.int32
        )
        # ZR register: layer of the last visible WOZ fragment (Section V-B).
        self.zr_register: int = -1

    def clear(self) -> None:
        self.layers.fill(self.CLEAR_LAYER)
        self.zr_register = -1

    def write(self, mask: np.ndarray, layer: int, is_woz: bool) -> int:
        """Record ``layer`` for the masked (visible, opaque) fragments."""
        written = _kernels.layer_write(self.layers, mask, layer)
        if is_woz and written:
            self.zr_register = layer
        return written

    @property
    def l_far(self) -> int:
        """The minimum stored layer — the paper's per-tile ``L_far``."""
        return int(self.layers.min())

    @property
    def fvp_is_woz(self) -> bool:
        """True when the tile's FVP belongs to a WOZ primitive.

        Compares the ZR register with ``L_far`` (Section V-B): if the last
        visible WOZ layer *is* the farthest visible layer, the FVP is a
        depth value; otherwise it is a layer identifier.
        """
        return self.zr_register == self.l_far
