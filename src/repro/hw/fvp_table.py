"""The FVP Table (Section V-C): per-tile farthest-visible-point depths.

At the end of a tile's rendering the FVP is computed from the Layer Buffer
and the Z-buffer and written here; during the *next* frame's binning, the
Polygon List Builder reads it to predict primitive visibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union


class FVPType(enum.Enum):
    """What kind of depth the tile's FVP is (the FVP-type bit)."""

    WOZ = "z"        # the FVP depth is a Z value (Z_far)
    NWOZ = "layer"   # the FVP depth is a layer identifier (L_far)


@dataclass(frozen=True)
class FVPEntry:
    """One FVP Table record.

    Attributes:
        fvp_type: whether ``value`` is a Z depth or a layer identifier.
        value: ``Z_far`` (float in [0, 1]) or ``L_far`` (int layer).
    """

    fvp_type: FVPType
    value: Union[float, int]


class FVPTable:
    """One entry per tile; 4 bytes per entry in Table II."""

    def __init__(self, num_tiles: int):
        self._entries: List[Optional[FVPEntry]] = [None] * num_tiles
        self.lookups = 0
        self.updates = 0

    def lookup(self, tile: int) -> Optional[FVPEntry]:
        """The tile's FVP from the previous frame, or None before any
        frame has completed (in which case every primitive is predicted
        visible)."""
        self.lookups += 1
        return self._entries[tile]

    def update(self, tile: int, entry: FVPEntry) -> None:
        """End-of-tile write of the freshly computed FVP."""
        self._entries[tile] = entry
        self.updates += 1

    def invalidate(self) -> None:
        """Drop all predictions (e.g. on scene cuts or resolution change)."""
        self._entries = [None] * len(self._entries)
