"""The Parameter Buffer and per-tile Display Lists.

The Polygon List Builder stores each primitive's attributes once in the
Parameter Buffer (a main-memory structure, cached by the tile cache) and
appends a pointer to them into the Display List of every tile the
primitive overlaps.

To support EVR's reordering (Algorithm 1), every Display List is *two*
lists: the raster pipeline drains the first list, then the second.  The
baseline pipeline simply never uses the second list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..geom import ScreenTriangle

POINTER_BYTES = 4
LAYER_ID_BYTES = 2


@dataclass(frozen=True)
class DisplayListEntry:
    """One Display List record: a primitive pointer plus EVR metadata.

    Attributes:
        primitive: the referenced primitive (stands in for dereferencing
            the Parameter Buffer pointer).
        offset: byte offset of the primitive's attributes in the
            Parameter Buffer, used to model pointer dereference traffic.
        layer: the layer identifier assigned to the primitive *in this
            tile* (stored alongside the pointer, Section V-A).
        predicted_occluded: EVR's visibility prediction for this tile.
        pointer_offset: byte address of this Display List record itself
            (the pointer the raster pipeline dereferences).
    """

    primitive: ScreenTriangle
    offset: int
    layer: int
    predicted_occluded: bool = False
    pointer_offset: int = 0


@dataclass
class DisplayList:
    """The two-part display list of one tile (Section IV-A)."""

    first: List[DisplayListEntry] = field(default_factory=list)
    second: List[DisplayListEntry] = field(default_factory=list)

    def append_first(self, entry: DisplayListEntry) -> None:
        self.first.append(entry)

    def append_second(self, entry: DisplayListEntry) -> None:
        self.second.append(entry)

    def promote_second(self) -> None:
        """Move the second list to the end of the first (Algorithm 1's
        response to an arriving NWOZ primitive)."""
        self.first.extend(self.second)
        self.second.clear()

    def __len__(self) -> int:
        return len(self.first) + len(self.second)

    def __iter__(self) -> Iterator[DisplayListEntry]:
        """Render order: the whole first list, then the second."""
        yield from self.first
        yield from self.second


class ParameterBuffer:
    """Frame-lifetime storage of primitive attributes and Display Lists."""

    def __init__(self, num_tiles: int, attribute_bytes_per_primitive: int = 144):
        self._attribute_bytes = attribute_bytes_per_primitive
        self._next_offset = 0
        self._display_lists: Dict[int, DisplayList] = {
            tile: DisplayList() for tile in range(num_tiles)
        }
        self.stored_primitives = 0

    @property
    def attribute_bytes_per_primitive(self) -> int:
        return self._attribute_bytes

    def store_primitive(self, primitive: ScreenTriangle) -> int:
        """Store a primitive's attributes; returns its byte offset."""
        offset = self._next_offset
        self._next_offset += self._attribute_bytes
        self.stored_primitives += 1
        return offset

    def display_list(self, tile: int) -> DisplayList:
        return self._display_lists[tile]

    def tiles(self) -> Iterator[Tuple[int, DisplayList]]:
        return iter(self._display_lists.items())

    @property
    def total_bytes(self) -> int:
        """Attribute bytes written so far (excludes pointers/layers)."""
        return self._next_offset

    def reset(self) -> None:
        """Recycle the buffer for the next frame."""
        self._next_offset = 0
        self.stored_primitives = 0
        for display_list in self._display_lists.values():
            display_list.first.clear()
            display_list.second.clear()
