"""The Layer Generator Table (Section V-A).

A small on-chip LUT with one entry per tile that assigns layer identifiers
to primitives during binning.  Per entry it remembers the last draw
command seen, the last layer assigned and the last primitive type, and
implements the paper's increment rules:

* primitives of the same command reuse the tile's current layer;
* a new NWOZ command always opens a new layer;
* a new WOZ command opens a new layer only if the previous primitive in
  the tile was NWOZ (consecutive WOZ batches share one layer, because
  their mutual visibility is resolved by the Z-buffer, not by age).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _LGTEntry:
    last_command: Optional[int] = None
    last_layer: int = 0
    last_was_woz: Optional[bool] = None


class LayerGeneratorTable:
    """One entry per tile; 3 bytes per entry in Table II."""

    def __init__(self, num_tiles: int):
        self._entries: List[_LGTEntry] = [_LGTEntry() for _ in range(num_tiles)]
        self.accesses = 0

    def assign_layer(self, tile: int, command_id: int, is_woz: bool) -> int:
        """Assign (and record) the layer for a primitive sorted into
        ``tile`` by draw command ``command_id``.

        Layer numbering starts at 0 per frame; the first command that
        touches a tile opens layer 1, so the Layer Buffer's clear value
        (0) is always strictly older than any real geometry.
        """
        entry = self._entries[tile]
        self.accesses += 1
        if entry.last_command != command_id:
            same_woz_batch = is_woz and entry.last_was_woz is True
            if not same_woz_batch:
                entry.last_layer += 1
            entry.last_command = command_id
        entry.last_was_woz = is_woz
        return entry.last_layer

    def current_layer(self, tile: int) -> int:
        """The tile's most recently assigned layer (0 if untouched)."""
        return self._entries[tile].last_layer

    def reset(self) -> None:
        """Start of frame: all counters back to zero."""
        for entry in self._entries:
            entry.last_command = None
            entry.last_layer = 0
            entry.last_was_woz = None
