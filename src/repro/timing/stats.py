"""Per-frame event counters produced by the functional pipeline.

Every quantity the timing/energy models — or the paper's figures — need is
an explicit counter here, split by pipeline (Geometry vs Raster) because
Figures 7 and 11 report the two separately.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List


@dataclass
class FrameStats:
    """Event counts for one rendered frame.

    Geometry-pipeline events:

    Attributes:
        commands_processed: draw commands decoded by the Command
            Processor (state setup, matrix binds).
        vertices_fetched: vertices read from memory.
        vertex_instructions: total vertex-shader ALU operations executed.
        primitives_in: triangles entering primitive assembly.
        primitives_culled: back-facing or off-screen triangles dropped.
        primitives_binned: triangles surviving assembly (sent to binning).
        primitive_tile_pairs: (triangle, tile) binning events.
        parameter_buffer_bytes: attribute bytes written to the Parameter
            Buffer (includes the layer-identifier overhead under EVR).
        layer_id_bytes: the subset of ``parameter_buffer_bytes`` spent on
            EVR layer identifiers (the paper's 2.1% overhead in Fig. 6).
        display_list_writes: pointers appended to Display Lists.
        signature_updates: per-(triangle, tile) CRC combines done by RE.
        signature_skips: CRC combines avoided because EVR predicted the
            triangle occluded in that tile.
        lgt_accesses: Layer Generator Table reads+updates (EVR).
        fvp_lookups: FVP Table reads during binning (EVR).

    Raster-pipeline events:

    Attributes:
        tiles_total: tiles scheduled this frame.
        tiles_rendered: tiles actually rendered.
        tiles_skipped: tiles skipped by Rendering Elimination.
        signature_checks: per-tile signature comparisons at schedule time.
        signature_poisons: tiles whose signature was invalidated because
            a predicted-occluded primitive was actually visible.
        display_list_reads: pointers dereferenced from Display Lists.
        primitives_rasterized: (triangle, tile) rasterization events.
        raster_attributes: scalar attributes set up by the rasterizer.
        fragments_generated: fragments produced by the rasterizer.
        early_z_tests: fragments tested by the Early Depth Test.
        early_z_kills: fragments discarded by the Early Depth Test.
        fragments_shaded: fragments that reached the fragment processors.
        fragment_instructions: total fragment-shader ALU operations.
        texture_samples: texture fetches issued by fragment shading.
        blend_operations: Color Buffer merge operations.
        depth_writes: Z-buffer updates.
        layer_buffer_writes: Layer Buffer updates (EVR).
        fvp_updates: end-of-tile FVP computations + FVP Table writes (EVR).
        color_flush_bytes: bytes flushed from Color Buffers to DRAM.
        overdrawn_fragments: shaded fragments later overwritten by an
            opaque fragment (pure overshading — the waste EVR attacks).
        prepass_primitives: primitives rasterized by the charged
            depth-only pre-pass (``z_prepass`` feature).
        prepass_fragments: fragments depth-tested by the pre-pass.
        prepass_depth_writes: Z-buffer writes made by the pre-pass.
        hiz_tests: Hierarchical-Z primitive rejection tests.
        hiz_culled: primitives skipped entirely by Hierarchical-Z.
        dsr_reused_fragments: fragments whose color was replicated from
            a shaded block anchor instead of shaded (``dsr`` feature).
        fhv_reconstructed: fragments written from previous-frame
            framebuffer history instead of shaded (``fhv`` feature).
        fhv_reconstruction_error: summed |true - history| color error
            (per channel, 0..1 scale) over reconstructed fragments —
            the FHV reconstruction-quality metric.
        vrpipe_killed: blended fragments dropped by the VR-Pipe-style
            opacity-threshold early termination.
    """

    # geometry
    commands_processed: int = 0
    vertices_fetched: int = 0
    vertex_instructions: int = 0
    primitives_in: int = 0
    primitives_culled: int = 0
    primitives_binned: int = 0
    primitive_tile_pairs: int = 0
    parameter_buffer_bytes: int = 0
    layer_id_bytes: int = 0
    display_list_writes: int = 0
    signature_updates: int = 0
    signature_skips: int = 0
    lgt_accesses: int = 0
    fvp_lookups: int = 0
    # raster
    tiles_total: int = 0
    tiles_rendered: int = 0
    tiles_skipped: int = 0
    signature_checks: int = 0
    signature_poisons: int = 0
    display_list_reads: int = 0
    primitives_rasterized: int = 0
    raster_attributes: int = 0
    fragments_generated: int = 0
    early_z_tests: int = 0
    early_z_kills: int = 0
    fragments_shaded: int = 0
    fragment_instructions: int = 0
    texture_samples: int = 0
    blend_operations: int = 0
    depth_writes: int = 0
    layer_buffer_writes: int = 0
    fvp_updates: int = 0
    color_flush_bytes: int = 0
    overdrawn_fragments: int = 0
    # Z-prepass (charged two-pass rendering)
    prepass_primitives: int = 0
    prepass_fragments: int = 0
    prepass_depth_writes: int = 0
    # Hierarchical-Z primitive culling
    hiz_tests: int = 0
    hiz_culled: int = 0
    # rival techniques (repro.techniques catalog)
    dsr_reused_fragments: int = 0
    fhv_reconstructed: int = 0
    fhv_reconstruction_error: float = 0.0
    vrpipe_killed: int = 0
    # prediction bookkeeping (EVR).  The four ``*_correct`` / ``*_hidden``
    # / ``mispredicted_visible`` counters form the FVP confusion matrix
    # over *validated* predictions — (primitive, tile) pairs that reached
    # the rasterizer, where the outcome is observable (pairs binned into
    # RE-skipped tiles never are).  ``mispredicted_visible`` is the
    # poison source: a predicted-occluded primitive that contributed
    # color (see repro.obs.metrics.fvp_confusion_matrix).
    predictions_made: int = 0
    predicted_occluded: int = 0
    mispredicted_visible: int = 0
    predicted_occluded_correct: int = 0
    predicted_visible_hidden: int = 0
    predicted_visible_correct: int = 0

    def merge(self, other: "FrameStats") -> "FrameStats":
        """Accumulate ``other`` into this instance (in place)."""
        for stats_field in dataclasses.fields(self):
            name = stats_field.name
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def sum(cls, stats_iterable: "Iterable[FrameStats]") -> "FrameStats":
        """Reduce many counter records into a fresh total.

        The single reduction used everywhere counters meet: per-tile
        deltas into a frame (the execution engine), per-frame stats into
        a run (:class:`StatsAccumulator`).
        """
        total = cls()
        for stats in stats_iterable:
            total.merge(stats)
        return total

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def overshading_ratio(self) -> float:
        """Shaded fragments per *covered* pixel-write — >1 means waste."""
        effective = self.fragments_shaded - self.overdrawn_fragments
        return self.fragments_shaded / effective if effective else 0.0


class StatsAccumulator:
    """Collects per-frame stats for a whole run and aggregates them."""

    def __init__(self) -> None:
        self.frames: List[FrameStats] = []

    def add(self, frame_stats: FrameStats) -> None:
        self.frames.append(frame_stats)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[FrameStats]:
        return iter(self.frames)

    def total(self) -> FrameStats:
        """Sum of all frames' counters."""
        return FrameStats.sum(self.frames)

    def totals_excluding_first(self) -> FrameStats:
        """Sum over frames 1..N-1.

        The first frame has no previous-frame information, so both RE and
        EVR behave as the baseline on it; excluding it matches the paper's
        steady-state measurements.
        """
        if len(self.frames) > 1:
            return FrameStats.sum(self.frames[1:])
        return self.total()
