"""Cycle cost model: event counters -> Geometry/Raster pipeline cycles.

The model is throughput-analytical: each pipeline's cycle count is the sum
of its stages' occupancies (events divided by per-cycle throughput from
Table II) plus the exposed fraction of its memory stalls.  This matches the
granularity at which the paper reports results (total cycles split into
Geometry and Raster, Figures 7/11) without simulating individual in-flight
transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig
from .stats import FrameStats


@dataclass(frozen=True)
class CostParameters:
    """Per-event cycle costs not directly given by Table II throughputs.

    These mirror the fixed-function latencies of a Mali-class GPU; the
    harness only uses results *relative* to a baseline built from the same
    parameters, so their absolute calibration affects the magnitude but
    not the direction of every comparison.
    """

    command_processor_cycles: float = 150.0  # decode + state setup per draw
    bin_test_cycles: float = 0.5          # bbox-vs-tile test per pair
    display_list_write_cycles: float = 0.25
    display_list_read_cycles: float = 0.25
    signature_update_cycles: float = 4.0  # read + shift + CRC combine + write
    signature_check_cycles: float = 2.0   # per-tile compare at schedule time
    lgt_access_cycles: float = 0.25
    fvp_lookup_cycles: float = 0.25
    fvp_update_cycles: float = 8.0        # end-of-tile min/max scan (pipelined)
    early_z_pixels_per_cycle: float = 4.0  # 32 in-flight quad-fragments
    blend_pixels_per_cycle: float = 4.0
    parameter_buffer_bytes_per_cycle: float = 16.0
    tile_schedule_cycles: float = 10.0    # fixed per-tile setup cost
    texture_miss_stall_cycles: float = 4.0  # exposed L1 texture-miss latency
    memory_stall_exposure: float = 0.35   # fraction of DRAM roofline exposed
    # Calibration: the synthetic scenes carry roughly an order of
    # magnitude fewer vertices per frame than the traced commercial
    # applications (whose Geometry Pipeline is ~15-25% of baseline time
    # in the paper's Figure 11).  This factor scales the whole Geometry
    # Pipeline to restore that share; it multiplies baseline and
    # technique identically, so it shifts magnitudes, never orderings.
    geometry_scale: float = 3.0


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycles attributed to each pipeline for one frame or one run."""

    geometry: float
    raster: float

    @property
    def total(self) -> float:
        return self.geometry + self.raster


class CostModel:
    """Converts :class:`FrameStats` into cycle counts."""

    def __init__(self, config: GPUConfig, params: CostParameters = CostParameters()):
        self.config = config
        self.params = params

    def geometry_cycles(self, stats: FrameStats, dram_cycles: float = 0.0) -> float:
        """Cycles spent in the Geometry Pipeline.

        Args:
            stats: event counters for the frame(s).
            dram_cycles: DRAM roofline cycles attributable to geometry
                traffic (vertex fetches + parameter buffer writes).
        """
        p = self.params
        commands = stats.commands_processed * p.command_processor_cycles
        shading = stats.vertex_instructions / self.config.vertex_processors
        assembly = stats.primitives_in / self.config.triangles_per_cycle
        binning = stats.primitive_tile_pairs * p.bin_test_cycles
        display_lists = stats.display_list_writes * p.display_list_write_cycles
        parameter_buffer = (
            stats.parameter_buffer_bytes / p.parameter_buffer_bytes_per_cycle
        )
        signatures = stats.signature_updates * p.signature_update_cycles
        evr = (
            stats.lgt_accesses * p.lgt_access_cycles
            + stats.fvp_lookups * p.fvp_lookup_cycles
        )
        stalls = dram_cycles * p.memory_stall_exposure
        return p.geometry_scale * (
            commands
            + shading
            + assembly
            + binning
            + display_lists
            + parameter_buffer
            + signatures
            + evr
            + stalls
        )

    def raster_cycles(self, stats: FrameStats, dram_cycles: float = 0.0) -> float:
        """Cycles spent in the Raster Pipeline.

        Args:
            stats: event counters for the frame(s).
            dram_cycles: DRAM roofline cycles attributable to raster
                traffic (texture misses + color flushes).
        """
        p = self.params
        scheduling = stats.tiles_rendered * p.tile_schedule_cycles
        signature_checks = stats.signature_checks * p.signature_check_cycles
        display_lists = stats.display_list_reads * p.display_list_read_cycles
        setup = stats.raster_attributes / self.config.raster_attributes_per_cycle
        early_z = stats.early_z_tests / p.early_z_pixels_per_cycle
        prepass = (
            stats.prepass_fragments / p.early_z_pixels_per_cycle
            + stats.prepass_primitives * 3.0
            / self.config.raster_attributes_per_cycle
        )
        hiz = stats.hiz_tests * 1.0
        shading = stats.fragment_instructions / self.config.fragment_processors
        textures = stats.texture_samples * 1.0 / self.config.fragment_processors
        blending = stats.blend_operations / p.blend_pixels_per_cycle
        fvp = stats.fvp_updates * p.fvp_update_cycles
        stalls = dram_cycles * p.memory_stall_exposure
        return (
            scheduling
            + signature_checks
            + display_lists
            + setup
            + early_z
            + prepass
            + hiz
            + shading
            + textures
            + blending
            + fvp
            + stalls
        )

    def breakdown(
        self,
        stats: FrameStats,
        geometry_dram_cycles: float = 0.0,
        raster_dram_cycles: float = 0.0,
    ) -> CycleBreakdown:
        return CycleBreakdown(
            geometry=self.geometry_cycles(stats, geometry_dram_cycles),
            raster=self.raster_cycles(stats, raster_dram_cycles),
        )

    def seconds(self, cycles: float) -> float:
        """Convert cycles to wall-clock seconds at the configured clock."""
        return cycles / (self.config.frequency_mhz * 1e6)
