"""Timing model: event counters and the cycle cost model.

The functional pipeline increments :class:`FrameStats` counters; the
:class:`CostModel` converts them (together with the memory system's DRAM
traffic) into Geometry-pipeline and Raster-pipeline cycle counts, the two
components the paper's Figures 7 and 11 report.
"""

from .stats import FrameStats, StatsAccumulator
from .costs import CostModel, CostParameters
from .queues import PipelineBalance, StageLoad, geometry_balance, raster_balance

__all__ = [
    "FrameStats",
    "StatsAccumulator",
    "CostModel",
    "CostParameters",
    "StageLoad",
    "PipelineBalance",
    "geometry_balance",
    "raster_balance",
]
