"""Pipeline-balance analysis: stage utilization and queue occupancy.

Table II lists the inter-stage queues of the Mali-450-class pipeline
(two 16-entry vertex queues, 16-entry triangle and tile queues, a
64-entry fragment queue).  The cycle cost model in :mod:`.costs` sums
stage occupancies — a good first-order model for a deeply-pipelined GPU
— but it cannot say *which* stage bounds a workload or how well the
queues decouple producers from consumers.  This module adds that
analysis:

* each stage's **busy cycles** are computed from the same event counters
  the cost model uses;
* the stage with the most busy cycles is the **bottleneck**; in steady
  state the pipeline's throughput-limited time equals the bottleneck's
  busy time;
* non-bottleneck stages expose a *residual* of their work when the
  queue decoupling them from the bottleneck is shallow — modeled as
  ``busy / (1 + queue_entries)``, the classic smoothing bound (an
  N-entry queue absorbs N items of rate mismatch before stalling the
  producer).

The resulting :class:`PipelineBalance` reports utilizations and a
pipelined cycle estimate, used by the ``pipeline-balance`` analysis in
the harness and compared against the additive model in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import GPUConfig
from .costs import CostParameters
from .stats import FrameStats


@dataclass(frozen=True)
class StageLoad:
    """One pipeline stage's demanded work.

    Attributes:
        name: stage name (matches Figure 1's boxes).
        items: units of work processed (vertices, triangles, quads...).
        busy_cycles: cycles the stage is busy at its Table II throughput.
        upstream_queue_entries: depth of the queue feeding this stage
            (None for the first stage).
    """

    name: str
    items: int
    busy_cycles: float
    upstream_queue_entries: Optional[int] = None


@dataclass(frozen=True)
class PipelineBalance:
    """Balance analysis of one pipeline for one frame or run."""

    stages: List[StageLoad]

    @property
    def bottleneck(self) -> StageLoad:
        return max(self.stages, key=lambda stage: stage.busy_cycles)

    @property
    def additive_cycles(self) -> float:
        """The no-overlap upper bound (what a scalar core would take)."""
        return sum(stage.busy_cycles for stage in self.stages)

    @property
    def pipelined_cycles(self) -> float:
        """Steady-state estimate with queue-mediated overlap.

        The bottleneck runs continuously; every other stage exposes the
        fraction of its work its upstream queue cannot absorb.
        """
        bottleneck = self.bottleneck
        total = bottleneck.busy_cycles
        for stage in self.stages:
            if stage is bottleneck:
                continue
            depth = stage.upstream_queue_entries
            exposure = 1.0 / (1.0 + depth) if depth else 1.0
            total += stage.busy_cycles * exposure
        return total

    def utilization(self) -> Dict[str, float]:
        """Per-stage busy time relative to the bottleneck's."""
        reference = max(self.bottleneck.busy_cycles, 1e-12)
        return {
            stage.name: stage.busy_cycles / reference
            for stage in self.stages
        }


def geometry_balance(
    stats: FrameStats,
    config: GPUConfig,
    params: CostParameters = CostParameters(),
) -> PipelineBalance:
    """Stage loads of the Geometry Pipeline (Figure 1, top row)."""
    vertex_queue = config.queue("vertex0").entries + config.queue(
        "vertex1"
    ).entries
    triangle_queue = config.queue("triangle").entries
    stages = [
        StageLoad(
            "command-processor",
            stats.commands_processed,
            stats.commands_processed * params.command_processor_cycles,
        ),
        StageLoad(
            "vertex-processor",
            stats.vertices_fetched,
            stats.vertex_instructions / config.vertex_processors,
            upstream_queue_entries=vertex_queue,
        ),
        StageLoad(
            "primitive-assembly",
            stats.primitives_in,
            stats.primitives_in / config.triangles_per_cycle,
            upstream_queue_entries=triangle_queue,
        ),
        StageLoad(
            "polygon-list-builder",
            stats.primitive_tile_pairs,
            stats.primitive_tile_pairs * params.bin_test_cycles
            + stats.display_list_writes * params.display_list_write_cycles
            + stats.parameter_buffer_bytes
            / params.parameter_buffer_bytes_per_cycle
            + stats.signature_updates * params.signature_update_cycles
            + stats.lgt_accesses * params.lgt_access_cycles
            + stats.fvp_lookups * params.fvp_lookup_cycles,
            upstream_queue_entries=triangle_queue,
        ),
    ]
    return PipelineBalance(stages)


def raster_balance(
    stats: FrameStats,
    config: GPUConfig,
    params: CostParameters = CostParameters(),
) -> PipelineBalance:
    """Stage loads of the Raster Pipeline (Figure 1, bottom row)."""
    tile_queue = config.queue("tile").entries
    fragment_queue = config.queue("fragment").entries
    stages = [
        StageLoad(
            "tile-scheduler",
            stats.tiles_rendered,
            stats.tiles_rendered * params.tile_schedule_cycles
            + stats.signature_checks * params.signature_check_cycles
            + stats.display_list_reads * params.display_list_read_cycles,
        ),
        StageLoad(
            "rasterizer",
            stats.primitives_rasterized,
            stats.raster_attributes / config.raster_attributes_per_cycle,
            upstream_queue_entries=tile_queue,
        ),
        StageLoad(
            "early-z",
            stats.early_z_tests,
            stats.early_z_tests / params.early_z_pixels_per_cycle,
            upstream_queue_entries=fragment_queue,
        ),
        StageLoad(
            "fragment-processors",
            stats.fragments_shaded,
            (stats.fragment_instructions + stats.texture_samples)
            / config.fragment_processors,
            upstream_queue_entries=fragment_queue,
        ),
        StageLoad(
            "blend",
            stats.blend_operations,
            stats.blend_operations / params.blend_pixels_per_cycle
            + stats.fvp_updates * params.fvp_update_cycles,
            upstream_queue_entries=fragment_queue,
        ),
    ]
    return PipelineBalance(stages)
