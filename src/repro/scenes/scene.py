"""2D layered sprite scenes (the painter's-algorithm benchmarks).

A :class:`Scene2D` is an ordered stack of :class:`Layer2D` layers drawn
bottom-to-top, exactly as mobile 2D engines do: a full-screen background,
several gameplay layers, optional translucent effect layers, and an
optional opaque HUD on top.  Every layer maps to one draw command per
frame, so layers are the unit at which the Layer Generator Table counts
"commands" — matching the paper's NWOZ layer semantics.

World coordinates are screen pixels with (0, 0) at the top-left: the
scene installs an orthographic projection that, composed with the
pipeline's y-down viewport transform, maps world (x, y) straight onto
pixel (x, y).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..commands import BlendMode, DrawCommand, Frame, FrameStream, RenderState, ShaderProfile
from ..errors import SceneError
from ..geom import Mesh, grid_mesh
from ..math3d import Mat4, Vec2, Vec3, Vec4, orthographic
from .motion import Motion, StaticMotion


@dataclass(frozen=True)
class SpriteSpec:
    """One sprite: a textured quad with optional motion.

    Attributes:
        center: position in screen pixels (top-left origin).
        size: width/height in pixels.
        color: base RGBA; alpha < 1 makes the sprite translucent when its
            layer blends.
        motion: displacement over time (default static).
        texture_id: texture sampled by the fragment shader cost model.
    """

    center: Vec2
    size: Vec2
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0)
    motion: Motion = StaticMotion()
    texture_id: int = 0


@dataclass
class Layer2D:
    """One draw command's worth of sprites.

    Attributes:
        name: label for traces.
        sprites: quads drawn by this layer, in order.
        blend: OPAQUE for solid layers, ALPHA for translucent ones.
        shader: fragment cost profile for the whole layer.
        subdivisions: tessellation of each sprite per axis.  Real 2D
            engines batch many small quads (9-slice panels, glyph runs,
            particle quads); subdividing keeps the simulator's per-frame
            vertex load representative of traced applications.
    """

    name: str
    sprites: List[SpriteSpec] = field(default_factory=list)
    blend: BlendMode = BlendMode.OPAQUE
    shader: ShaderProfile = ShaderProfile(vertex_instructions=24)
    subdivisions: int = 2

    def build_mesh(self, frame: int) -> Mesh:
        mesh = Mesh()
        for sprite in self.sprites:
            offset = sprite.motion.offset(frame)
            corner = Vec3(
                sprite.center.x + offset.x - sprite.size.x / 2.0,
                sprite.center.y + offset.y - sprite.size.y / 2.0,
                0.0,
            )
            mesh.extend(
                grid_mesh(
                    corner,
                    Vec3(sprite.size.x, 0.0, 0.0),
                    Vec3(0.0, sprite.size.y, 0.0),
                    self.subdivisions,
                    self.subdivisions,
                    sprite.color,
                )
            )
        return mesh

    @property
    def state(self) -> RenderState:
        return RenderState.sprite_2d(shader=self.shader, blend=self.blend)


@dataclass(frozen=True)
class HUDSpec:
    """A static opaque overlay drawn last (scoreboards, control pads).

    Attributes:
        panels: (x, y, width, height) rectangles in pixels.
        color: flat panel color.
    """

    panels: Sequence[tuple] = ()
    color: Vec4 = Vec4(0.15, 0.15, 0.2, 1.0)

    def build_layer(self) -> Layer2D:
        sprites = [
            SpriteSpec(
                center=Vec2(x + w / 2.0, y + h / 2.0),
                size=Vec2(w, h),
                color=self.color,
                texture_id=7,
            )
            for (x, y, w, h) in self.panels
        ]
        return Layer2D(name="hud", sprites=sprites,
                       shader=ShaderProfile(fragment_instructions=4,
                                            texture_fetches=1, texture_id=7))


class Scene2D:
    """An animated stack of 2D layers producing a :class:`FrameStream`."""

    def __init__(
        self,
        width: int,
        height: int,
        layers: Sequence[Layer2D],
        hud: Optional[HUDSpec] = None,
    ):
        if not layers:
            raise SceneError("a 2D scene needs at least one layer")
        self.width = width
        self.height = height
        self.layers = list(layers)
        if hud is not None and hud.panels:
            self.layers.append(hud.build_layer())
        self._projection = orthographic(0.0, float(width), float(height), 0.0,
                                        -1.0, 1.0)

    def build_frame(self, index: int) -> Frame:
        commands = []
        for layer in self.layers:
            mesh = layer.build_mesh(index)
            if not len(mesh):
                continue
            commands.append(
                DrawCommand.from_mesh(mesh, state=layer.state, label=layer.name)
            )
        if not commands:
            raise SceneError("scene produced an empty frame")
        return Frame(
            commands, view=Mat4.identity(), projection=self._projection,
            index=index,
        )

    def stream(self, num_frames: int) -> FrameStream:
        return FrameStream(self.build_frame, num_frames)
