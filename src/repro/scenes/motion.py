"""Deterministic motion models for animated scene objects.

A :class:`Motion` maps a frame index to a 3D offset.  All motions are pure
functions of the index (no hidden state), so replaying a frame stream is
bit-exact — the temporal-coherence property the whole paper rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..math3d import Vec3


class Motion(Protocol):
    """Anything that can offset an object over time."""

    def offset(self, frame: int) -> Vec3:
        """World-space displacement at ``frame``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class StaticMotion:
    """No movement — static background/HUD geometry."""

    def offset(self, frame: int) -> Vec3:
        return Vec3(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class LinearOscillation:
    """Sinusoidal sweep along a direction.

    Attributes:
        direction: displacement at peak amplitude.
        period_frames: frames per full oscillation.
        phase: phase offset in radians (decorrelates objects).
    """

    direction: Vec3
    period_frames: float = 32.0
    phase: float = 0.0

    def offset(self, frame: int) -> Vec3:
        angle = 2.0 * math.pi * frame / self.period_frames + self.phase
        return self.direction * math.sin(angle)


@dataclass(frozen=True)
class CircularMotion:
    """Orbit in the XY plane (used by 2D effects and 3D props)."""

    radius: float
    period_frames: float = 48.0
    phase: float = 0.0

    def offset(self, frame: int) -> Vec3:
        angle = 2.0 * math.pi * frame / self.period_frames + self.phase
        return Vec3(self.radius * math.cos(angle), self.radius * math.sin(angle), 0.0)


@dataclass(frozen=True)
class JitterMotion:
    """Pseudo-random per-frame displacement (deterministic in the frame).

    Models particle-like noise: positions decorrelate every frame, so any
    tile the object touches is never frame-to-frame redundant.
    """

    amplitude: float
    seed: int = 0

    def offset(self, frame: int) -> Vec3:
        # Two cheap deterministic hashes of (seed, frame).
        def _hash(salt: int) -> float:
            value = (self.seed * 1_000_003 + frame * 31_337 + salt) & 0xFFFFFFFF
            value = (value ^ (value >> 13)) * 0x5BD1E995 & 0xFFFFFFFF
            return ((value >> 8) & 0xFFFF) / 65535.0 * 2.0 - 1.0

        return Vec3(_hash(1) * self.amplitude, _hash(2) * self.amplitude, 0.0)
