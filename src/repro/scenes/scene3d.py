"""Hybrid 3D scenes: WOZ geometry under NWOZ background/HUD layers.

A :class:`Scene3D` mimics the structure of the paper's 3D benchmarks
(Section III-C "Hybrid Scenes"):

1. a full-screen NWOZ background drawn first (skybox/backdrop, painter's
   algorithm);
2. depth-tested, depth-writing world geometry — a ground grid plus boxes,
   each its own draw command, optionally submitted back-to-front (the
   order that maximizes overshading and that EVR's reordering fixes);
3. translucent NWOZ effects, blended back-to-front;
4. a static opaque NWOZ HUD drawn last with a screen-space projection —
   the overlay under which moving world geometry hides, the exact case
   where EVR-aided RE beats baseline RE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..commands import (
    BlendMode,
    DrawCommand,
    Frame,
    FrameStream,
    RenderState,
    ShaderProfile,
)
from ..errors import SceneError
from ..geom import Mesh, box_mesh, grid_mesh, quad, screen_quad
from ..math3d import Mat4, Vec3, Vec4, look_at, orthographic, perspective
from .motion import Motion, StaticMotion
from .scene import HUDSpec


@dataclass(frozen=True)
class BoxSpec:
    """One WOZ prop: an axis-aligned box with optional motion."""

    center: Vec3
    size: Vec3
    color: Vec4 = Vec4(0.8, 0.8, 0.8, 1.0)
    motion: Motion = StaticMotion()
    texture_id: int = 1
    name: str = "box"


@dataclass(frozen=True)
class TranslucentSpec:
    """One NWOZ effect quad: a blended vertical billboard."""

    center: Vec3
    size: float
    color: Vec4 = Vec4(1.0, 0.8, 0.2, 0.5)
    motion: Motion = StaticMotion()


class Scene3D:
    """An animated hybrid 3D scene producing a :class:`FrameStream`."""

    def __init__(
        self,
        width: int,
        height: int,
        boxes: Sequence[BoxSpec],
        translucents: Sequence[TranslucentSpec] = (),
        hud: Optional[HUDSpec] = None,
        ground_size: float = 30.0,
        ground_divisions: int = 10,
        ground_color: Vec4 = Vec4(0.35, 0.4, 0.3, 1.0),
        background_color: Vec4 = Vec4(0.4, 0.6, 0.9, 1.0),
        camera_eye: Vec3 = Vec3(0.0, 8.0, 14.0),
        camera_target: Vec3 = Vec3(0.0, 0.0, 0.0),
        camera_orbit_period: float = 0.0,
        draw_order: str = "back_to_front",
        world_shader: ShaderProfile = ShaderProfile(
            vertex_instructions=16, fragment_instructions=18,
            texture_fetches=2, texture_id=1,
        ),
    ):
        """
        Args:
            width: screen width in pixels.
            height: screen height in pixels.
            boxes: WOZ props, each becoming one draw command.
            translucents: blended NWOZ effect quads.
            hud: optional static opaque overlay.
            ground_size: side length of the square ground grid (0: none).
            ground_divisions: grid subdivision per axis.
            ground_color: flat ground color.
            background_color: full-screen backdrop color.
            camera_eye: camera position (start of orbit when orbiting).
            camera_target: look-at point.
            camera_orbit_period: frames per full orbit around the target
                (0 = static camera; a moving camera defeats Rendering
                Elimination everywhere except under the HUD, as in the
                paper's *300*/*mst*).
            draw_order: submission order of the WOZ commands:
                ``"back_to_front"`` (worst case for Early-Z, the order
                many engines accidentally produce), ``"front_to_back"``
                (best case) or ``"submission"`` (as listed).
            world_shader: cost profile of the 3D geometry's shaders.
        """
        if draw_order not in ("back_to_front", "front_to_back", "submission"):
            raise SceneError(f"unknown draw order {draw_order!r}")
        self.width = width
        self.height = height
        self.boxes = list(boxes)
        self.translucents = list(translucents)
        self.hud = hud
        self.ground_size = ground_size
        self.ground_divisions = ground_divisions
        self.ground_color = ground_color
        self.background_color = background_color
        self.camera_eye = camera_eye
        self.camera_target = camera_target
        self.camera_orbit_period = camera_orbit_period
        self.draw_order = draw_order
        self.world_shader = world_shader

        self._screen_projection = orthographic(
            0.0, float(width), float(height), 0.0, -1.0, 1.0
        )
        self._projection = perspective(
            math.radians(60.0), width / height, 0.5, 200.0
        )

    # -- camera ------------------------------------------------------------

    def eye(self, frame: int) -> Vec3:
        """Camera position at ``frame`` (orbit or static)."""
        if self.camera_orbit_period <= 0.0:
            return self.camera_eye
        base = self.camera_eye - self.camera_target
        radius = math.hypot(base.x, base.z)
        start_angle = math.atan2(base.z, base.x)
        angle = start_angle + 2.0 * math.pi * frame / self.camera_orbit_period
        return Vec3(
            self.camera_target.x + radius * math.cos(angle),
            self.camera_eye.y,
            self.camera_target.z + radius * math.sin(angle),
        )

    # -- frame assembly -------------------------------------------------------

    def build_frame(self, index: int) -> Frame:
        eye = self.eye(index)
        view = look_at(eye, self.camera_target, Vec3(0.0, 1.0, 0.0))
        commands: List[DrawCommand] = [self._background_command()]
        commands.extend(self._world_commands(index, eye))
        commands.extend(self._translucent_commands(index, eye))
        hud_command = self._hud_command()
        if hud_command is not None:
            commands.append(hud_command)
        return Frame(commands, view=view, projection=self._projection,
                     index=index)

    def stream(self, num_frames: int) -> FrameStream:
        return FrameStream(self.build_frame, num_frames)

    # -- command builders -------------------------------------------------------

    def _background_command(self) -> DrawCommand:
        mesh = screen_quad(0, 0, self.width, self.height,
                           color=self.background_color)
        return DrawCommand.from_mesh(
            mesh,
            state=RenderState.sprite_2d(
                shader=ShaderProfile(fragment_instructions=3,
                                     texture_fetches=1, texture_id=6)
            ),
            label="background",
            view=Mat4.identity(),
            projection=self._screen_projection,
        )

    def _world_commands(self, index: int, eye: Vec3) -> List[DrawCommand]:
        state = RenderState.opaque_3d(shader=self.world_shader)
        entries: List[tuple] = []
        if self.ground_size > 0.0:
            ground = _grid_ground(self.ground_size, self.ground_divisions,
                                  self.ground_color)
            entries.append((Vec3(0.0, 0.0, 0.0), ground, "ground"))
        for box in self.boxes:
            center = box.center + box.motion.offset(index)
            mesh = box_mesh(center, box.size, box.color)
            entries.append((center, mesh, box.name))

        if self.draw_order == "back_to_front":
            entries.sort(key=lambda item: -_distance(item[0], eye))
        elif self.draw_order == "front_to_back":
            entries.sort(key=lambda item: _distance(item[0], eye))

        return [
            DrawCommand.from_mesh(mesh, state=state, label=name)
            for (_, mesh, name) in entries
        ]

    def _translucent_commands(self, index: int, eye: Vec3) -> List[DrawCommand]:
        if not self.translucents:
            return []
        state = RenderState.translucent_3d(
            shader=ShaderProfile(fragment_instructions=8,
                                 texture_fetches=1, texture_id=4)
        )
        placed = []
        for effect in self.translucents:
            center = effect.center + effect.motion.offset(index)
            placed.append((center, effect))
        placed.sort(key=lambda item: -_distance(item[0], eye))
        commands = []
        for center, effect in placed:
            half = effect.size / 2.0
            mesh = quad(
                Vec3(center.x - half, center.y - half, center.z),
                Vec3(effect.size, 0.0, 0.0),
                Vec3(0.0, effect.size, 0.0),
                effect.color,
            )
            commands.append(
                DrawCommand.from_mesh(mesh, state=state, label="effect")
            )
        return commands

    def _hud_command(self) -> Optional[DrawCommand]:
        if self.hud is None or not self.hud.panels:
            return None
        layer = self.hud.build_layer()
        mesh = layer.build_mesh(0)  # HUDs are static by construction
        return DrawCommand.from_mesh(
            mesh,
            state=layer.state,
            label="hud",
            view=Mat4.identity(),
            projection=self._screen_projection,
        )


def _distance(point: Vec3, eye: Vec3) -> float:
    return (point - eye).length()


def _grid_ground(size: float, divisions: int, color: Vec4) -> Mesh:
    """A y=0 plane grid with its normal up (+y), CCW when seen from above."""
    half = size / 2.0
    return grid_mesh(
        Vec3(-half, 0.0, -half),
        Vec3(0.0, 0.0, size),
        Vec3(size, 0.0, 0.0),
        divisions,
        divisions,
        color,
    )
