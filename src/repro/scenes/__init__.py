"""Synthetic animated scenes standing in for the paper's 20 Android apps.

The paper drives its simulator with GLES traces of commercial games; those
traces are unavailable, so this package generates deterministic animated
scenes whose *structure* matches each benchmark's type (Table III): pure
2D painter's-algorithm sprite stacks, or hybrid 3D scenes with depth-
tested geometry, background layers, HUD overlays and translucent effects.

Every generator is a pure function of the frame index (given a seed), so
streams replay identically — the property Rendering Elimination and EVR
exploit, and the property the tests rely on.
"""

from .motion import (
    CircularMotion,
    JitterMotion,
    LinearOscillation,
    Motion,
    StaticMotion,
)
from .keyframe import KeyframePath
from .scene import HUDSpec, Layer2D, Scene2D, SpriteSpec
from .scene3d import BoxSpec, Scene3D
from .benchmarks import (
    BENCHMARKS,
    BenchmarkInfo,
    benchmark_info,
    benchmark_names,
    benchmark_stream,
    scaled_world_stream,
)

__all__ = [
    "Motion",
    "StaticMotion",
    "LinearOscillation",
    "CircularMotion",
    "JitterMotion",
    "KeyframePath",
    "SpriteSpec",
    "Layer2D",
    "HUDSpec",
    "Scene2D",
    "BoxSpec",
    "Scene3D",
    "BENCHMARKS",
    "BenchmarkInfo",
    "benchmark_names",
    "benchmark_info",
    "benchmark_stream",
    "scaled_world_stream",
]
