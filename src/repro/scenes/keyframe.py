"""Keyframed animation: waypoint paths for objects and cameras.

The built-in motions (:mod:`.motion`) are periodic primitives; real
game content follows authored paths.  A :class:`KeyframePath` interpolates
a sequence of (frame, position) waypoints — linearly or with smoothstep
easing — and exposes both the :class:`Motion` protocol (for sprites and
boxes) and direct sampling (for cameras).

Like every motion in this package, a path is a pure function of the
frame index, so scenes using it remain bit-exactly replayable.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import SceneError
from ..math3d import Vec3

Keyframe = Tuple[float, Vec3]


def _smoothstep(t: float) -> float:
    return t * t * (3.0 - 2.0 * t)


@dataclass(frozen=True)
class KeyframePath:
    """A piecewise path through (frame, position) waypoints.

    Attributes:
        keyframes: waypoints sorted by frame time; at least two.
        easing: ``"linear"`` or ``"smooth"`` (smoothstep per segment).
        loop: wrap the frame index by the path's duration, so the last
            waypoint flows back into the first.
    """

    keyframes: Tuple[Keyframe, ...]
    easing: str = "linear"
    loop: bool = False

    def __post_init__(self) -> None:
        if len(self.keyframes) < 2:
            raise SceneError("a keyframe path needs at least two waypoints")
        times = [time for time, _ in self.keyframes]
        if times != sorted(times) or len(set(times)) != len(times):
            raise SceneError("keyframe times must be strictly increasing")
        if self.easing not in ("linear", "smooth"):
            raise SceneError(f"unknown easing {self.easing!r}")

    @classmethod
    def through(cls, positions: Sequence[Vec3], frames_per_segment: float,
                easing: str = "linear", loop: bool = False) -> "KeyframePath":
        """Evenly-timed path through ``positions``."""
        keyframes = tuple(
            (index * frames_per_segment, position)
            for index, position in enumerate(positions)
        )
        return cls(keyframes, easing=easing, loop=loop)

    @property
    def duration(self) -> float:
        return self.keyframes[-1][0] - self.keyframes[0][0]

    def position(self, frame: float) -> Vec3:
        """Sample the path at ``frame`` (clamped, or wrapped if looping)."""
        start_time = self.keyframes[0][0]
        end_time = self.keyframes[-1][0]
        time = float(frame)
        if self.loop and self.duration > 0:
            time = start_time + (time - start_time) % self.duration
        if time <= start_time:
            return self.keyframes[0][1]
        if time >= end_time:
            return self.keyframes[-1][1]
        times = [keyframe_time for keyframe_time, _ in self.keyframes]
        segment = bisect_right(times, time) - 1
        t0, p0 = self.keyframes[segment]
        t1, p1 = self.keyframes[segment + 1]
        t = (time - t0) / (t1 - t0)
        if self.easing == "smooth":
            t = _smoothstep(t)
        return p0 + (p1 - p0) * t

    # -- Motion protocol ------------------------------------------------------

    def offset(self, frame: int) -> Vec3:
        """Displacement relative to the path's first waypoint, so a
        keyframed object's spec position is its starting point."""
        return self.position(frame) - self.keyframes[0][1]
