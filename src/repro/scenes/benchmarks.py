"""The 20-benchmark suite of Table III, as synthetic scene generators.

Each benchmark is a deterministic generator whose *structure* mirrors the
corresponding Android application's workload class:

* **2D** benchmarks are painter's-algorithm sprite stacks (pure NWOZ):
  a static background, gameplay layers with a genre-appropriate fraction
  of animated sprites, optional translucent effect layers, optional HUD
  panels, and — for the benchmarks where the paper reports large
  EVR-over-RE gains (*hay*, *wmw*) — **hidden motion**: sprites that move
  every frame underneath a static opaque cover, which defeats baseline RE
  but not EVR-aided RE.

* **3D** benchmarks are hybrid scenes (WOZ + NWOZ): backdrop, ground,
  boxes submitted back-to-front (the overshading worst case EVR's
  reordering attacks), translucent effects and a HUD.  Fast-action titles
  (*300*, *mst*) orbit the camera, which defeats RE everywhere except
  under the HUD — the exact behaviour Figure 9 reports for them.

All layout randomness comes from ``random.Random(seed)`` with a fixed
per-benchmark seed, and all animation is a pure function of the frame
index, so streams replay bit-exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..commands import BlendMode, FrameStream, ShaderProfile
from ..config import GPUConfig
from ..errors import SceneError
from ..math3d import Vec2, Vec3, Vec4
from .motion import CircularMotion, JitterMotion, LinearOscillation, StaticMotion
from .scene import HUDSpec, Layer2D, Scene2D, SpriteSpec
from .scene3d import BoxSpec, Scene3D, TranslucentSpec

SceneBuilder = Callable[[GPUConfig], Union[Scene2D, Scene3D]]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table III plus its scene generator."""

    alias: str
    title: str
    genre: str
    scene_type: str  # "2D" or "3D"
    description: str
    builder: SceneBuilder


# ---------------------------------------------------------------------------
# 2D scene recipe
# ---------------------------------------------------------------------------

def _random_color(rng: random.Random, alpha: float = 1.0) -> Vec4:
    return Vec4(
        0.2 + 0.8 * rng.random(),
        0.2 + 0.8 * rng.random(),
        0.2 + 0.8 * rng.random(),
        alpha,
    )


def _sprite_scene(
    config: GPUConfig,
    seed: int,
    layers: int,
    sprites_per_layer: int,
    animated_fraction: float,
    sprite_scale: float = 0.12,
    motion_scale: float = 0.10,
    alpha_effects: int = 0,
    hud_coverage: float = 0.0,
    hidden_motion_sprites: int = 0,
    jitter: bool = False,
    fragment_instructions: int = 10,
) -> Scene2D:
    """Build a parameterized 2D layered scene.

    Args:
        config: supplies the screen dimensions.
        seed: layout seed (fixed per benchmark).
        layers: gameplay layers above the background.
        sprites_per_layer: sprites in each gameplay layer.
        animated_fraction: fraction of sprites that move every frame.
        sprite_scale: sprite size as a fraction of the screen diagonal.
        motion_scale: motion amplitude as a fraction of screen width.
        alpha_effects: number of translucent sprites in a top effects
            layer (0: no effects layer).
        hud_coverage: fraction of screen height covered by static opaque
            HUD bands (split top/bottom).
        hidden_motion_sprites: moving sprites placed inside the bottom
            HUD band *under* the opaque cover — invisible motion that
            only EVR-aided RE can ignore.  Requires ``hud_coverage > 0``.
        jitter: use per-frame jitter instead of smooth oscillation.
        fragment_instructions: shader cost of the gameplay layers.
    """
    if hidden_motion_sprites and hud_coverage <= 0.0:
        raise SceneError("hidden motion requires a HUD cover")
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    sprite_size = sprite_scale * (width + height) / 2.0
    amplitude = motion_scale * width

    scene_layers: List[Layer2D] = [
        Layer2D(
            name="background",
            sprites=[
                SpriteSpec(
                    center=Vec2(width / 2.0, height / 2.0),
                    size=Vec2(width, height),
                    color=Vec4(0.25, 0.3, 0.38, 1.0),
                    texture_id=5,
                )
            ],
            shader=ShaderProfile(fragment_instructions=4, texture_fetches=1,
                                 texture_id=5),
        )
    ]

    hud_band = hud_coverage * height / 2.0
    playfield_top = hud_band
    playfield_bottom = height - hud_band

    for layer_index in range(layers):
        sprites: List[SpriteSpec] = []
        for sprite_index in range(sprites_per_layer):
            center = Vec2(
                rng.uniform(0.05 * width, 0.95 * width),
                rng.uniform(playfield_top + 2, playfield_bottom - 2),
            )
            size = Vec2(
                sprite_size * rng.uniform(0.6, 1.4),
                sprite_size * rng.uniform(0.6, 1.4),
            )
            animated = rng.random() < animated_fraction
            if not animated:
                motion = StaticMotion()
            elif jitter:
                motion = JitterMotion(amplitude * 0.3,
                                      seed=seed * 977 + sprite_index)
            elif sprite_index % 2:
                motion = LinearOscillation(
                    Vec3(amplitude, 0.0, 0.0),
                    period_frames=24 + 8 * (sprite_index % 3),
                    phase=rng.uniform(0, 6.28),
                )
            else:
                motion = CircularMotion(
                    amplitude * 0.5,
                    period_frames=32 + 8 * (sprite_index % 4),
                    phase=rng.uniform(0, 6.28),
                )
            sprites.append(
                SpriteSpec(center=center, size=size,
                           color=_random_color(rng),
                           motion=motion,
                           texture_id=layer_index % 4)
            )
        scene_layers.append(
            Layer2D(
                name=f"layer{layer_index}",
                sprites=sprites,
                shader=ShaderProfile(
                    vertex_instructions=24,
                    fragment_instructions=fragment_instructions,
                    texture_fetches=1,
                    texture_id=layer_index % 4,
                ),
            )
        )

    if hidden_motion_sprites:
        # Moving sprites confined to the bottom HUD band; the opaque HUD
        # drawn later fully covers them.
        hidden: List[SpriteSpec] = []
        band_top = height - hud_band
        for sprite_index in range(hidden_motion_sprites):
            hidden.append(
                SpriteSpec(
                    center=Vec2(
                        rng.uniform(0.1 * width, 0.9 * width),
                        band_top + hud_band / 2.0,
                    ),
                    size=Vec2(sprite_size * 0.8, hud_band * 0.6),
                    color=_random_color(rng),
                    motion=LinearOscillation(
                        Vec3(amplitude, 0.0, 0.0),
                        period_frames=16 + 4 * sprite_index,
                        phase=rng.uniform(0, 6.28),
                    ),
                )
            )
        scene_layers.append(Layer2D(name="hidden-motion", sprites=hidden))

    if alpha_effects:
        effects: List[SpriteSpec] = []
        for sprite_index in range(alpha_effects):
            effects.append(
                SpriteSpec(
                    center=Vec2(
                        rng.uniform(0.1 * width, 0.9 * width),
                        rng.uniform(playfield_top, playfield_bottom),
                    ),
                    size=Vec2(sprite_size, sprite_size),
                    color=_random_color(rng, alpha=0.5),
                    motion=CircularMotion(
                        amplitude * 0.4,
                        period_frames=20 + 6 * sprite_index,
                        phase=rng.uniform(0, 6.28),
                    ),
                )
            )
        scene_layers.append(
            Layer2D(name="effects", sprites=effects, blend=BlendMode.ALPHA,
                    shader=ShaderProfile(fragment_instructions=6,
                                         texture_fetches=1, texture_id=3))
        )

    hud = None
    if hud_coverage > 0.0:
        hud = HUDSpec(
            panels=(
                (0.0, 0.0, width, hud_band),
                (0.0, height - hud_band, width, hud_band),
            )
        )

    return Scene2D(config.screen_width, config.screen_height, scene_layers,
                   hud=hud)


# ---------------------------------------------------------------------------
# 3D scene recipe
# ---------------------------------------------------------------------------

def _world_scene(
    config: GPUConfig,
    seed: int,
    num_boxes: int,
    moving_fraction: float,
    orbit_period: float = 0.0,
    hud_coverage: float = 0.2,
    translucent_count: int = 2,
    draw_order: str = "back_to_front",
    spread: float = 9.0,
    fragment_instructions: int = 18,
    hidden_movers: int = 0,
) -> Scene3D:
    """Build a parameterized hybrid 3D scene.

    Args:
        config: supplies the screen dimensions.
        seed: layout seed.
        num_boxes: WOZ props scattered over the ground.
        moving_fraction: fraction of boxes that oscillate every frame.
        orbit_period: camera orbit period in frames (0 = static camera).
        hud_coverage: fraction of screen height covered by HUD bands.
        translucent_count: blended effect quads.
        draw_order: WOZ submission order (see :class:`Scene3D`).
        spread: half-extent of the box field in world units.
        fragment_instructions: world-geometry shader cost.
        hidden_movers: boxes oscillating *behind* a large static wall
            facing the (static) camera.  Their motion changes their
            binned attributes every frame — defeating baseline RE for the
            wall's tiles — while the WOZ FVP (``Z_far`` = wall depth)
            lets EVR exclude them and keep skipping those tiles.  Only
            meaningful with a static camera.
    """
    rng = random.Random(seed)
    boxes: List[BoxSpec] = []
    if hidden_movers:
        # The occluder: a tall wall between the default camera (at
        # +z, looking at the origin) and the movers tucked behind it.
        boxes.append(
            BoxSpec(center=Vec3(3.5, 2.2, 6.0), size=Vec3(8.0, 4.4, 0.8),
                    color=Vec4(0.55, 0.5, 0.45, 1.0), name="wall")
        )
        for mover_index in range(hidden_movers):
            boxes.append(
                BoxSpec(
                    center=Vec3(3.5 + 1.1 * (mover_index % 3 - 1), 1.0,
                                2.8 - 0.7 * (mover_index // 3)),
                    size=Vec3(1.0, 1.2, 1.0),
                    color=_random_color(rng),
                    motion=LinearOscillation(
                        Vec3(0.9, 0.0, 0.4),
                        period_frames=14 + 3 * mover_index,
                        phase=rng.uniform(0, 6.28),
                    ),
                    name=f"hidden{mover_index}",
                )
            )
    for box_index in range(num_boxes):
        center = Vec3(
            rng.uniform(-spread, spread),
            rng.uniform(1.0, 2.6),
            rng.uniform(-spread, spread),
        )
        size = Vec3(
            rng.uniform(2.0, 4.5),
            rng.uniform(2.0, 5.5),
            rng.uniform(2.0, 4.5),
        )
        if rng.random() < moving_fraction:
            motion = LinearOscillation(
                Vec3(rng.uniform(1.0, 3.0), 0.0, rng.uniform(-2.0, 2.0)),
                period_frames=20 + 4 * (box_index % 5),
                phase=rng.uniform(0, 6.28),
            )
        else:
            motion = StaticMotion()
        boxes.append(
            BoxSpec(center=center, size=size, color=_random_color(rng),
                    motion=motion, name=f"box{box_index}")
        )

    translucents = [
        TranslucentSpec(
            center=Vec3(rng.uniform(-spread, spread), 2.5,
                        rng.uniform(-spread, spread)),
            size=rng.uniform(2.0, 4.0),
            color=_random_color(rng, alpha=0.45),
            motion=CircularMotion(1.5, period_frames=28 + 6 * effect_index),
        )
        for effect_index in range(translucent_count)
    ]

    hud = None
    if hud_coverage > 0.0:
        width = float(config.screen_width)
        height = float(config.screen_height)
        band = hud_coverage * height / 2.0
        hud = HUDSpec(
            panels=(
                (0.0, 0.0, width, band),
                (0.0, height - band, width, band),
            )
        )

    return Scene3D(
        config.screen_width,
        config.screen_height,
        boxes=boxes,
        translucents=translucents,
        hud=hud,
        camera_eye=Vec3(0.0, 5.0, 13.0),
        camera_orbit_period=orbit_period,
        draw_order=draw_order,
        world_shader=ShaderProfile(
            vertex_instructions=48,
            fragment_instructions=fragment_instructions,
            texture_fetches=2,
            texture_id=1,
        ),
    )


# ---------------------------------------------------------------------------
# The suite (Table III)
# ---------------------------------------------------------------------------

def _suite() -> Dict[str, BenchmarkInfo]:
    entries: List[BenchmarkInfo] = [
        # -- 3D -------------------------------------------------------------
        BenchmarkInfo(
            "300", "300: Seize your glory", "Action", "3D",
            "Fast action: orbiting camera, dense moving melee, HUD. "
            "RE finds almost nothing; EVR recovers HUD-covered tiles and "
            "cuts overshading via reordering.",
            lambda cfg: _world_scene(cfg, seed=300, num_boxes=14,
                                     moving_fraction=0.5, orbit_period=90.0,
                                     hud_coverage=0.25,
                                     fragment_instructions=24),
        ),
        BenchmarkInfo(
            "ata", "Air Attack", "Arcade", "3D",
            "Scrolling shooter: static camera, many moving props, thin HUD.",
            lambda cfg: _world_scene(cfg, seed=101, num_boxes=12,
                                     moving_fraction=0.6, orbit_period=0.0,
                                     hud_coverage=0.15, hidden_movers=3),
        ),
        BenchmarkInfo(
            "csn", "Crazy Snowboard", "Arcade", "3D",
            "Downhill arcade: static chase camera, sparse moving props.",
            lambda cfg: _world_scene(cfg, seed=102, num_boxes=10,
                                     moving_fraction=0.4, orbit_period=0.0,
                                     hud_coverage=0.18, translucent_count=3,
                                     hidden_movers=2),
        ),
        BenchmarkInfo(
            "mst", "Modern Strike", "First Person Shooter", "3D",
            "FPS: orbiting camera, dense occluding geometry, large HUD.",
            lambda cfg: _world_scene(cfg, seed=103, num_boxes=18,
                                     moving_fraction=0.35, orbit_period=70.0,
                                     hud_coverage=0.3,
                                     fragment_instructions=26),
        ),
        BenchmarkInfo(
            "ter", "Temple Run", "Platform", "3D",
            "Endless runner: static camera (world moves), corridor props.",
            lambda cfg: _world_scene(cfg, seed=104, num_boxes=12,
                                     moving_fraction=0.7, orbit_period=0.0,
                                     hud_coverage=0.12, spread=7.0,
                                     hidden_movers=3),
        ),
        BenchmarkInfo(
            "tib", "Tigerball", "Physics Puzzle", "3D",
            "Physics puzzle: static camera, one moving ball among static "
            "props - high tile redundancy for a 3D title.",
            lambda cfg: _world_scene(cfg, seed=105, num_boxes=9,
                                     moving_fraction=0.15, orbit_period=0.0,
                                     hud_coverage=0.2, translucent_count=1,
                                     hidden_movers=2),
        ),
        # -- 2D -------------------------------------------------------------
        BenchmarkInfo(
            "abi", "Angry Birds", "Puzzle", "2D",
            "Slingshot physics: static backdrop, moving projectiles.",
            lambda cfg: _sprite_scene(cfg, seed=201, layers=3,
                                      sprites_per_layer=8,
                                      animated_fraction=0.45,
                                      alpha_effects=2),
        ),
        BenchmarkInfo(
            "arm", "Armymen", "Strategy", "2D",
            "Strategy board: many small units, moderate motion, HUD.",
            lambda cfg: _sprite_scene(cfg, seed=202, layers=3,
                                      sprites_per_layer=10,
                                      animated_fraction=0.4,
                                      sprite_scale=0.09,
                                      hud_coverage=0.15),
        ),
        BenchmarkInfo(
            "ale", "Avenger Legends", "Strategy", "2D",
            "Battle scenes: large animated characters, effect overlays.",
            lambda cfg: _sprite_scene(cfg, seed=203, layers=3,
                                      sprites_per_layer=6,
                                      animated_fraction=0.55,
                                      sprite_scale=0.16,
                                      alpha_effects=3),
        ),
        BenchmarkInfo(
            "ccs", "Candy Crush Saga", "Puzzle", "2D",
            "Match-3 board: almost entirely static, few swapping candies.",
            lambda cfg: _sprite_scene(cfg, seed=204, layers=3,
                                      sprites_per_layer=12,
                                      animated_fraction=0.08,
                                      sprite_scale=0.08,
                                      motion_scale=0.04),
        ),
        BenchmarkInfo(
            "cde", "Castle Defense", "Tower Defense", "2D",
            "Tower defense: static map and towers, a couple of creeps - "
            "the suite's most redundant workload.",
            lambda cfg: _sprite_scene(cfg, seed=205, layers=3,
                                      sprites_per_layer=9,
                                      animated_fraction=0.06,
                                      motion_scale=0.05,
                                      hud_coverage=0.22,
                                      hidden_motion_sprites=2),
        ),
        BenchmarkInfo(
            "coc", "Clash of Clans", "MMO Strategy", "2D",
            "Village view: static buildings, some ambient animation, HUD.",
            lambda cfg: _sprite_scene(cfg, seed=206, layers=4,
                                      sprites_per_layer=8,
                                      animated_fraction=0.35,
                                      sprite_scale=0.1,
                                      hud_coverage=0.18),
        ),
        BenchmarkInfo(
            "ctr", "Cut the Rope", "Puzzle", "2D",
            "Physics puzzle: swinging candy over a static scene.",
            lambda cfg: _sprite_scene(cfg, seed=207, layers=3,
                                      sprites_per_layer=7,
                                      animated_fraction=0.4,
                                      alpha_effects=2),
        ),
        BenchmarkInfo(
            "dpe", "Dude Perfect", "Puzzle", "2D",
            "Trickshot puzzle: a single moving ball over static sets - "
            "near-total redundancy.",
            lambda cfg: _sprite_scene(cfg, seed=208, layers=3,
                                      sprites_per_layer=8,
                                      animated_fraction=0.05,
                                      motion_scale=0.06),
        ),
        BenchmarkInfo(
            "hay", "Hayday", "Simulation", "2D",
            "Farm simulation: static farm plus animated critters under an "
            "opaque toolbar - hidden motion where EVR-aided RE shines.",
            lambda cfg: _sprite_scene(cfg, seed=209, layers=3,
                                      sprites_per_layer=9,
                                      animated_fraction=0.12,
                                      hud_coverage=0.3,
                                      hidden_motion_sprites=6),
        ),
        BenchmarkInfo(
            "hop", "Hopeless", "Action Survival", "2D",
            "Dark cave: very few large primitives concentrated in few "
            "tiles - the workload where RE signature overhead is hardest "
            "to amortize.",
            lambda cfg: _sprite_scene(cfg, seed=210, layers=2,
                                      sprites_per_layer=3,
                                      animated_fraction=0.5,
                                      sprite_scale=0.3,
                                      jitter=True),
        ),
        BenchmarkInfo(
            "mto", "Magic Touch", "Arcade", "2D",
            "Slow-falling balloons over a static backdrop: high "
            "redundancy with a thin animated band.",
            lambda cfg: _sprite_scene(cfg, seed=211, layers=2,
                                      sprites_per_layer=7,
                                      animated_fraction=0.12,
                                      motion_scale=0.05,
                                      hud_coverage=0.22,
                                      hidden_motion_sprites=2),
        ),
        BenchmarkInfo(
            "red", "Redsun", "Strategy", "2D",
            "Wargame map: dense static units, marching columns, HUD.",
            lambda cfg: _sprite_scene(cfg, seed=212, layers=4,
                                      sprites_per_layer=9,
                                      animated_fraction=0.35,
                                      sprite_scale=0.09,
                                      hud_coverage=0.15),
        ),
        BenchmarkInfo(
            "wmw", "Where's my water", "Puzzle", "2D",
            "Digging puzzle: static dirt field with water animation under "
            "a fixed opaque frame - the other hidden-motion benchmark.",
            lambda cfg: _sprite_scene(cfg, seed=213, layers=3,
                                      sprites_per_layer=8,
                                      animated_fraction=0.1,
                                      hud_coverage=0.26,
                                      hidden_motion_sprites=5),
        ),
        BenchmarkInfo(
            "wog", "World of goo", "Physics Puzzle", "2D",
            "Goo structures: wobbling blobs over static backdrop, "
            "translucent goo effects.",
            lambda cfg: _sprite_scene(cfg, seed=214, layers=3,
                                      sprites_per_layer=7,
                                      animated_fraction=0.5,
                                      alpha_effects=3,
                                      jitter=True),
        ),
    ]
    return {entry.alias: entry for entry in entries}


BENCHMARKS: Dict[str, BenchmarkInfo] = _suite()


def benchmark_names(scene_type: Optional[str] = None) -> Tuple[str, ...]:
    """Aliases of all benchmarks, optionally filtered by "2D"/"3D"."""
    return tuple(
        alias
        for alias, info in BENCHMARKS.items()
        if scene_type is None or info.scene_type == scene_type
    )


def benchmark_info(alias: str) -> BenchmarkInfo:
    """Look up one benchmark by its Table III alias."""
    try:
        return BENCHMARKS[alias]
    except KeyError:
        raise SceneError(
            f"unknown benchmark {alias!r}; known: {sorted(BENCHMARKS)}"
        ) from None


def benchmark_stream(
    alias: str, config: GPUConfig, frames: Optional[int] = None
) -> FrameStream:
    """Build the frame stream for one benchmark under ``config``."""
    info = benchmark_info(alias)
    scene = info.builder(config)
    return scene.stream(frames if frames is not None else config.frames)


def scaled_world_stream(
    config: GPUConfig,
    num_boxes: int = 42,
    frames: Optional[int] = None,
) -> FrameStream:
    """A geometry-scaled world scene for throughput benchmarking.

    The ``tib`` layout with the prop count scaled up, so display lists
    are deep enough to exercise batched rasterization (``repro bench``'s
    ``scaled`` preset).  Not part of the Table III suite.
    """
    scene = _world_scene(
        config, seed=105, num_boxes=num_boxes, moving_fraction=0.3,
        orbit_period=0.0, hud_coverage=0.2, translucent_count=2,
        hidden_movers=2,
    )
    return scene.stream(frames if frames is not None else config.frames)
