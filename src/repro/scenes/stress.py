"""Adversarial stress scenes for the robustness corpus.

The Table III benchmarks (:mod:`repro.scenes.benchmarks`) are
*well-behaved*: every sprite has positive area, cameras move smoothly,
and depth complexity stays in the range the paper reports.  The EVR
correctness contracts — pixel-identical frames across pipeline modes,
oracle-bounded skips, bit-identical kernel backends — must also hold on
the inputs nobody hand-codes: zero-area and sliver triangles that
stress rasterizer edge cases, particle storms that flood the binner,
camera churn that defeats Rendering Elimination everywhere, deep
depth-complexity stacks (the VR-Pipe workload class) and hidden-motion
adversaries tuned to maximize the EVR/RE disagreement surface.

Every builder here is a pure function of ``(config, seed, frame
index)``: layout randomness comes from ``random.Random(seed)`` and all
animation derives from the frame index, so the resulting
:class:`FrameStream` replays bit-exactly — the property the corpus
serializer (:mod:`repro.corpus.store`) and the differential replay gate
(:mod:`repro.corpus.gate`) both rely on.

Values fed into geometry are rounded to a few decimals (:func:`_r`) so
serialized traces stay compact without losing the sub-pixel placements
the families deliberately exercise.
"""

from __future__ import annotations

import random
from typing import List

from ..commands import (
    BlendMode,
    DrawCommand,
    Frame,
    FrameStream,
    RenderState,
    ShaderProfile,
)
from ..config import GPUConfig
from ..geom import Mesh, Triangle, Vertex, VertexAttributes
from ..geom.mesh import grid_mesh, screen_quad, sprite_quad
from ..math3d import Mat4, Vec2, Vec3, Vec4, orthographic
from .motion import JitterMotion, LinearOscillation
from .scene import HUDSpec, Layer2D, Scene2D, SpriteSpec
from .scene3d import BoxSpec, Scene3D, TranslucentSpec


def _r(value: float, places: int = 3) -> float:
    """Round scene coordinates for compact, diffable trace files."""
    return round(value, places)


def _color(rng: random.Random, alpha: float = 1.0) -> Vec4:
    return Vec4(
        _r(0.2 + 0.8 * rng.random()),
        _r(0.2 + 0.8 * rng.random()),
        _r(0.2 + 0.8 * rng.random()),
        alpha,
    )


def _screen_projection(config: GPUConfig) -> Mat4:
    return orthographic(
        0.0, float(config.screen_width), float(config.screen_height), 0.0,
        -1.0, 1.0,
    )


def _tri(a: Vec3, b: Vec3, c: Vec3, color: Vec4) -> Triangle:
    normal = Vec3(0.0, 0.0, 1.0)
    return Triangle(
        Vertex(a, VertexAttributes(color, Vec2(0.0, 0.0), normal)),
        Vertex(b, VertexAttributes(color, Vec2(1.0, 0.0), normal)),
        Vertex(c, VertexAttributes(color, Vec2(0.0, 1.0), normal)),
    )


def _background_command(config: GPUConfig, color: Vec4) -> DrawCommand:
    mesh = screen_quad(0.0, 0.0, float(config.screen_width),
                       float(config.screen_height), color=color)
    return DrawCommand.from_mesh(
        mesh,
        state=RenderState.sprite_2d(
            shader=ShaderProfile(fragment_instructions=4,
                                 texture_fetches=1, texture_id=5)
        ),
        label="background",
    )


def _frame_2d(config: GPUConfig, commands: List[DrawCommand],
              index: int) -> Frame:
    return Frame(commands, view=Mat4.identity(),
                 projection=_screen_projection(config), index=index)


# ---------------------------------------------------------------------------
# Degenerate geometry: zero-area, collinear, point and off-screen prims
# ---------------------------------------------------------------------------

def degenerate_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """Zero-area triangles, collinear slivers collapsed to lines, point
    primitives, quads far off-screen and sub-pixel quads that fall
    between sample points — every shape the rasterizer must reject
    identically under every mode and backend, mixed with a few honest
    moving sprites so frames stay visually nontrivial."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    state = RenderState.sprite_2d(
        shader=ShaderProfile(fragment_instructions=8, texture_fetches=1))
    anchors = [
        Vec2(_r(rng.uniform(0.1 * width, 0.9 * width)),
             _r(rng.uniform(0.1 * height, 0.9 * height)))
        for _ in range(6)
    ]
    colors = [_color(rng) for _ in range(8)]

    def build(index: int) -> Frame:
        mesh = Mesh()
        a = anchors[0]
        # Collinear (zero signed area) and point-collapsed triangles.
        mesh.triangles.append(_tri(
            Vec3(a.x, a.y, 0.0),
            Vec3(a.x + 10.0, a.y + 10.0, 0.0),
            Vec3(a.x + 20.0, a.y + 20.0, 0.0),
            colors[0],
        ))
        p = anchors[1]
        mesh.triangles.append(_tri(
            Vec3(p.x, p.y, 0.0), Vec3(p.x, p.y, 0.0), Vec3(p.x, p.y, 0.0),
            colors[1],
        ))
        # Zero-width and zero-height quads.
        mesh.extend(screen_quad(anchors[2].x, anchors[2].y, 0.0, 12.0,
                                color=colors[2]))
        mesh.extend(screen_quad(anchors[3].x, anchors[3].y, 12.0, 0.0,
                                color=colors[3]))
        # Entirely off-screen, far beyond the guard band.
        mesh.extend(screen_quad(width * 4.0, height * 4.0, 9.0, 9.0,
                                color=colors[4]))
        mesh.extend(screen_quad(-width * 3.0, -height * 3.0, 9.0, 9.0,
                                color=colors[5]))
        # A sub-pixel quad drifting between pixel centers: coverage can
        # flip on/off frame to frame, but must flip the same way in
        # every mode.
        drift = _r(0.05 * (index % 8))
        mesh.extend(screen_quad(anchors[4].x + drift, anchors[4].y + 0.3,
                                0.4, 0.4, color=colors[6]))
        commands = [
            _background_command(config, Vec4(0.2, 0.22, 0.3, 1.0)),
            DrawCommand.from_mesh(mesh, state=state, label="degenerate"),
        ]
        # Honest motion so RE/EVR have something real to track.
        mover = sprite_quad(
            Vec2(anchors[5].x + _r(3.0 * (index % 5)), anchors[5].y),
            Vec2(10.0, 8.0), color=colors[7],
        )
        commands.append(DrawCommand.from_mesh(mover, state=state,
                                              label="mover"))
        return _frame_2d(config, commands, index)

    return FrameStream(build, config.frames)


# ---------------------------------------------------------------------------
# Slivers: long, thin, tile-crossing triangles
# ---------------------------------------------------------------------------

def sliver_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """Sub-pixel-tall quads spanning the full screen width and long
    diagonal sliver triangles that cross many tiles while covering
    almost no samples — the conservative-coverage edge case where a
    batched rasterizer could disagree with the scalar reference."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    state = RenderState.sprite_2d(
        shader=ShaderProfile(fragment_instructions=6))
    bands = [_r(rng.uniform(0.1 * height, 0.9 * height)) for _ in range(5)]
    colors = [_color(rng) for _ in range(9)]

    def build(index: int) -> Frame:
        mesh = Mesh()
        # Horizontal hairline bands, drifting by fractions of a pixel.
        for band_index, band_y in enumerate(bands):
            y = band_y + _r(0.125 * ((index + band_index) % 8))
            mesh.extend(screen_quad(0.0, y, width, 0.45,
                                    color=colors[band_index]))
        # Diagonal slivers corner-to-corner: ~1px wide at one end,
        # vanishing at the other.
        mesh.triangles.append(_tri(
            Vec3(0.0, 0.0, 0.0), Vec3(width, height - 1.2, 0.0),
            Vec3(width, height, 0.0), colors[5],
        ))
        mesh.triangles.append(_tri(
            Vec3(width, 0.0, 0.0), Vec3(0.0, height, 0.0),
            Vec3(0.0, height - 1.0, 0.0), colors[6],
        ))
        # A vertical hairline sweeping one pixel column per frame.
        x = float((index * 7) % max(1, config.screen_width))
        mesh.extend(screen_quad(x, 0.0, 0.5, height, color=colors[7]))
        commands = [
            _background_command(config, Vec4(0.16, 0.2, 0.24, 1.0)),
            DrawCommand.from_mesh(mesh, state=state, label="slivers"),
        ]
        return _frame_2d(config, commands, index)

    return FrameStream(build, config.frames)


# ---------------------------------------------------------------------------
# Particle storm: many tiny quads, per-frame jitter, blended layer on top
# ---------------------------------------------------------------------------

def particle_storm_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """Emitters spraying dozens of 1-3px quads whose positions jitter
    every frame (no two frames share a tile signature anywhere), capped
    by a translucent ember layer — the binning/blending flood case."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    # Particle count scales with the screen so the tiny preset stays
    # cheap and committed traces stay small.
    per_emitter = max(16, (config.screen_width * config.screen_height) // 256)
    emitters = [
        (Vec2(_r(rng.uniform(0.2 * width, 0.8 * width)),
              _r(rng.uniform(0.2 * height, 0.8 * height))),
         _color(rng))
        for _ in range(3)
    ]
    state = RenderState.sprite_2d(
        shader=ShaderProfile(fragment_instructions=5))
    blend_state = RenderState.sprite_2d(
        shader=ShaderProfile(fragment_instructions=5),
        blend=BlendMode.ALPHA,
    )

    def build(index: int) -> Frame:
        commands = [
            _background_command(config, Vec4(0.1, 0.1, 0.14, 1.0)),
        ]
        for emitter_index, (origin, color) in enumerate(emitters):
            burst = random.Random(
                (seed * 1009 + emitter_index) * 7919 + index)
            mesh = Mesh()
            for _ in range(per_emitter):
                mesh.extend(sprite_quad(
                    Vec2(_r(origin.x + burst.uniform(-0.45, 0.45) * width),
                         _r(origin.y + burst.uniform(-0.45, 0.45) * height)),
                    Vec2(_r(burst.uniform(1.0, 3.0)),
                         _r(burst.uniform(1.0, 3.0))),
                    color=color,
                ))
            commands.append(DrawCommand.from_mesh(
                mesh, state=state, label=f"emitter{emitter_index}"))
        embers = Mesh()
        ember_rng = random.Random(seed * 31 + index)
        for _ in range(max(8, per_emitter // 4)):
            embers.extend(sprite_quad(
                Vec2(_r(ember_rng.uniform(0.0, width)),
                     _r(ember_rng.uniform(0.0, height))),
                Vec2(_r(ember_rng.uniform(2.0, 5.0)),
                     _r(ember_rng.uniform(2.0, 5.0))),
                color=Vec4(1.0, 0.7, 0.3, 0.5),
            ))
        commands.append(DrawCommand.from_mesh(embers, state=blend_state,
                                              label="embers"))
        return _frame_2d(config, commands, index)

    return FrameStream(build, config.frames)


# ---------------------------------------------------------------------------
# Orbit churn: a fast camera that defeats RE everywhere but the HUD
# ---------------------------------------------------------------------------

def orbit_churn_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """A 3D prop field under a camera orbiting a full revolution every
    few frames: every world tile's attributes change every frame, so RE
    should find nothing outside the HUD and EVR's gains collapse to the
    covered band — while images stay pixel-identical across modes."""
    rng = random.Random(seed)
    boxes = [
        BoxSpec(
            center=Vec3(_r(rng.uniform(-8.0, 8.0)),
                        _r(rng.uniform(1.0, 2.5)),
                        _r(rng.uniform(-8.0, 8.0))),
            size=Vec3(_r(rng.uniform(2.0, 4.0)),
                      _r(rng.uniform(2.0, 5.0)),
                      _r(rng.uniform(2.0, 4.0))),
            color=_color(rng),
            name=f"box{box_index}",
        )
        for box_index in range(8)
    ]
    translucents = [
        TranslucentSpec(
            center=Vec3(_r(rng.uniform(-6.0, 6.0)), 2.5,
                        _r(rng.uniform(-6.0, 6.0))),
            size=_r(rng.uniform(2.0, 3.5)),
            color=_color(rng, alpha=0.45),
        )
    ]
    width = float(config.screen_width)
    height = float(config.screen_height)
    band = _r(0.18 * height)
    scene = Scene3D(
        config.screen_width,
        config.screen_height,
        boxes=boxes,
        translucents=translucents,
        hud=HUDSpec(panels=((0.0, 0.0, width, band),
                            (0.0, height - band, width, band))),
        camera_eye=Vec3(0.0, 5.0, 12.0),
        # A full orbit every ~5 frames: adjacent frames see the world
        # from wildly different angles.
        camera_orbit_period=5.0,
        draw_order="back_to_front",
    )
    return scene.stream(config.frames)


# ---------------------------------------------------------------------------
# Stereo double-wide: the same scene submitted twice, side by side
# ---------------------------------------------------------------------------

def stereo_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """A VR-style double-wide frame: every sprite is drawn once into the
    left half and again into the right half with a small horizontal
    parallax.  Tiles repeat near-identical content at a fixed offset —
    the redundancy pattern cross-eye reuse schemes chase, and a layout
    where any tile-indexing bug shows up as a left/right mismatch."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    half = width / 2.0
    parallax = 1.5
    sprites = []
    for sprite_index in range(10):
        sprites.append((
            Vec2(_r(rng.uniform(0.1 * half, 0.9 * half - parallax)),
                 _r(rng.uniform(0.1 * height, 0.9 * height))),
            Vec2(_r(rng.uniform(3.0, 0.22 * half)),
                 _r(rng.uniform(3.0, 0.22 * height))),
            _color(rng),
            _r(rng.uniform(0.05, 0.12) * half),   # motion amplitude
            8 + 2 * (sprite_index % 4),           # motion period
        ))
    state = RenderState.sprite_2d(
        shader=ShaderProfile(fragment_instructions=8, texture_fetches=1))

    def build(index: int) -> Frame:
        commands = [
            _background_command(config, Vec4(0.18, 0.2, 0.28, 1.0)),
        ]
        for eye_index, eye_offset in ((0, 0.0), (1, half + parallax)):
            mesh = Mesh()
            for center, size, color, amplitude, period in sprites:
                phase = 2.0 * (index % period) / period
                swing = amplitude * (phase if phase <= 1.0 else 2.0 - phase)
                mesh.extend(sprite_quad(
                    Vec2(center.x + _r(swing) + eye_offset, center.y),
                    size, color=color,
                ))
            commands.append(DrawCommand.from_mesh(
                mesh, state=state, label=f"eye{eye_index}"))
        divider = screen_quad(half - 0.5, 0.0, 1.0, height,
                              color=Vec4(0.05, 0.05, 0.05, 1.0))
        commands.append(DrawCommand.from_mesh(divider, state=state,
                                              label="divider"))
        return _frame_2d(config, commands, index)

    return FrameStream(build, config.frames)


# ---------------------------------------------------------------------------
# Deep depth-complexity stacks (the VR-Pipe workload class)
# ---------------------------------------------------------------------------

def depth_stack_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """A dozen full-screen depth-tested layers submitted back-to-front
    (the overshading worst case), one mid-stack mover, and a blended
    veil on top: depth complexity far beyond the Table III suite, where
    reordering gains are largest and any depth-precision disagreement
    between backends becomes a visible pixel diff."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    layers = 12
    state = RenderState.opaque_3d(
        shader=ShaderProfile(fragment_instructions=10), cull_backface=False)
    colors = [_color(rng) for _ in range(layers)]
    # Each layer is a grid slightly inset from the one below so every
    # layer still owns some visible border pixels.
    insets = [_r(1.5 * layer_index) for layer_index in range(layers)]
    mover_color = _color(rng)

    def build(index: int) -> Frame:
        commands = [
            _background_command(config, Vec4(0.12, 0.12, 0.16, 1.0)),
        ]
        # Back-to-front: z from deep (0.9) toward near (0.1).
        for layer_index in range(layers):
            z = _r(0.9 - 0.8 * layer_index / (layers - 1))
            inset = insets[layer_index]
            mesh = grid_mesh(
                Vec3(inset, inset, z),
                Vec3(width - 2.0 * inset, 0.0, 0.0),
                Vec3(0.0, height - 2.0 * inset, 0.0),
                2, 2, colors[layer_index],
            )
            commands.append(DrawCommand.from_mesh(
                mesh, state=state, label=f"stack{layer_index}"))
        # A mover sandwiched mid-stack: occluded by the six layers above
        # it, occluding the six below.
        mover = screen_quad(
            _r(0.25 * width + 2.0 * (index % 6)), _r(0.4 * height),
            _r(0.2 * width), _r(0.2 * height), z=0.5, color=mover_color,
        )
        commands.append(DrawCommand.from_mesh(mover, state=state,
                                              label="mid-mover"))
        veil = screen_quad(0.0, _r(0.65 * height), width, _r(0.3 * height),
                           color=Vec4(0.9, 0.9, 1.0, 0.35))
        commands.append(DrawCommand.from_mesh(
            veil,
            state=RenderState.sprite_2d(
                shader=ShaderProfile(fragment_instructions=4),
                blend=BlendMode.ALPHA),
            label="veil"))
        return _frame_2d(config, commands, index)

    return FrameStream(build, config.frames)


# ---------------------------------------------------------------------------
# Hidden motion under cover: the EVR-vs-RE adversary
# ---------------------------------------------------------------------------

def hidden_motion_stream(config: GPUConfig, seed: int = 0) -> FrameStream:
    """Sprites jittering every frame underneath a full-width opaque
    cover, plus one mover straddling the cover's edge so part of its
    motion is visible: baseline RE sees changed signatures in all the
    covered tiles and re-renders them; EVR's visibility prediction must
    skip exactly the covered ones — and only those — in every frame."""
    rng = random.Random(seed)
    width = float(config.screen_width)
    height = float(config.screen_height)
    band = _r(0.3 * height)
    band_top = height - band
    layers = [
        Layer2D(
            name="backdrop",
            sprites=[SpriteSpec(center=Vec2(width / 2.0, height / 2.0),
                                size=Vec2(width, height),
                                color=Vec4(0.24, 0.28, 0.34, 1.0),
                                texture_id=5)],
            shader=ShaderProfile(fragment_instructions=4, texture_fetches=1,
                                 texture_id=5),
        ),
        Layer2D(
            name="statics",
            sprites=[
                SpriteSpec(
                    center=Vec2(_r(rng.uniform(0.1 * width, 0.9 * width)),
                                _r(rng.uniform(0.1 * height,
                                               0.8 * band_top))),
                    size=Vec2(_r(rng.uniform(4.0, 0.2 * width)),
                              _r(rng.uniform(4.0, 0.2 * height))),
                    color=_color(rng),
                )
                for _ in range(6)
            ],
            shader=ShaderProfile(fragment_instructions=8,
                                 texture_fetches=1),
        ),
        Layer2D(
            name="hidden-jitter",
            sprites=[
                SpriteSpec(
                    center=Vec2(_r(rng.uniform(0.1 * width, 0.9 * width)),
                                _r(band_top + band / 2.0)),
                    size=Vec2(_r(rng.uniform(4.0, 12.0)), _r(band * 0.5)),
                    color=_color(rng),
                    motion=JitterMotion(_r(0.1 * width),
                                        seed=seed * 613 + sprite_index),
                )
                for sprite_index in range(5)
            ],
        ),
        Layer2D(
            name="edge-straddler",
            sprites=[
                SpriteSpec(
                    center=Vec2(_r(0.5 * width), _r(band_top)),
                    size=Vec2(_r(0.12 * width), _r(0.6 * band)),
                    color=_color(rng),
                    motion=LinearOscillation(Vec3(_r(0.2 * width), 0.0, 0.0),
                                             period_frames=9),
                )
            ],
        ),
    ]
    scene = Scene2D(
        config.screen_width, config.screen_height, layers,
        hud=HUDSpec(panels=((0.0, band_top, width, band),)),
    )
    return scene.stream(config.frames)
