"""The differential replay gate: corpus streams vs every contract.

For each corpus family the gate renders the stream under every
requested pipeline mode crossed with every kernel backend and feeds the
results through :func:`repro.validate.validate_stream` — one
:class:`~repro.validate.ValidationReport` per family covering pixel
identity, the fragment-ordering contract, the oracle skip bound and
backend bit-identity.

On a violation the stream is minimized with the delta-debugging
shrinker (:mod:`repro.corpus.shrink`) under the *same* failure
predicate, and the minimized repro is dropped into a quarantine
directory as a portable ``repro-trace`` next to a JSON violation report
that pins everything needed to replay it standalone: config, modes,
backends, the fault plan (if one was armed) and the check labels that
failed.

Fault injection: a :class:`~repro.resilience.FaultPlan` with a
``pixel`` rate arms :func:`make_pixel_corruptor`, which damages one
deterministic pixel of the first rendered frame for every
(family, mode, backend) the plan selects.  The decision key excludes
the frame count, so the violation survives shrinking — the property
that makes ``--inject-faults pixel:1.0`` a true end-to-end test of the
gate, the shrinker and the quarantine pipeline.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..commands import FrameStream
from ..commands.trace import save_trace
from ..config import GPUConfig
from ..obs.events import CorpusFamilyChecked, get_bus
from ..obs.metrics import global_registry
from ..pipeline import RunResult
from ..resilience.faults import FaultPlan, corrupt_pixel
from ..techniques import Technique, default_modes, resolve_technique
from ..validate import Corruptor, ValidationReport, validate_stream
from .shrink import DEFAULT_MAX_EVALS, ShrinkOutcome, shrink_stream

VIOLATION_REPORT_VERSION = 1


@dataclass
class FamilyResult:
    """The gate's verdict on one corpus family."""

    family: str
    frames: int
    report: ValidationReport
    seconds: float
    shrunk: Optional[ShrinkOutcome] = None
    trace_path: str = ""
    report_path: str = ""

    @property
    def passed(self) -> bool:
        return self.report.passed


def make_pixel_corruptor(plan: Optional[FaultPlan],
                         family: str) -> Optional[Corruptor]:
    """The post-render corruptor for ``family`` under ``plan``.

    Returns ``None`` when the plan is absent or carries no ``pixel``
    rate, so normal replay pays nothing.  The decision key is
    ``corpus/<family>/<mode>/<backend>`` — deliberately independent of
    the stream's frame count so a shrunk stream keeps failing the same
    way.
    """
    if plan is None or plan.rates.get("pixel", 0.0) <= 0.0:
        return None

    def corruptor(mode: str, backend: str, result: RunResult) -> RunResult:
        key = f"corpus/{family}/{mode}/{backend}"
        if plan.decide(key, attempt=0) != "pixel":
            return result
        frames = list(result.frames)
        frames[0] = dataclasses.replace(
            frames[0], image=corrupt_pixel(frames[0].image, key, plan.seed))
        return dataclasses.replace(result, frames=frames)

    return corruptor


def _violation_document(
    result: FamilyResult,
    config: GPUConfig,
    modes: Sequence[Technique],
    backends: Sequence[str],
    plan: Optional[FaultPlan],
    trace_filename: str,
) -> Dict[str, object]:
    shrunk = result.shrunk
    document: Dict[str, object] = {
        "report": "corpus-violation",
        "version": VIOLATION_REPORT_VERSION,
        "family": result.family,
        "trace": trace_filename,
        "failures": list(result.report.failures),
        "checks": list(result.report.checks),
        "gpu": {
            "screen_width": config.screen_width,
            "screen_height": config.screen_height,
            "frames": config.frames,
        },
        "modes": [mode.value for mode in modes],
        "backends": list(backends),
        "fault_plan": plan.describe() if plan is not None else "",
        "fault_seed": plan.seed if plan is not None else 0,
    }
    if shrunk is not None:
        document["shrink"] = {
            "frames": shrunk.frames,
            "draws": shrunk.draws,
            "original_frames": shrunk.original_frames,
            "original_draws": shrunk.original_draws,
            "evals": shrunk.evals,
            "minimal": shrunk.minimal,
        }
    document["replay_hint"] = (
        f"repro trace replay {trace_filename} "
        f"--width {config.screen_width} --height {config.screen_height}"
        + (f" --backends {' '.join(backends)}" if backends else "")
        + (f" --inject-faults {plan.describe()} --fault-seed {plan.seed}"
           if plan is not None else "")
    )
    return document


def _quarantine_violation(
    result: FamilyResult,
    stream: FrameStream,
    quarantine_dir: str,
    config: GPUConfig,
    modes: Sequence[Technique],
    backends: Sequence[str],
    plan: Optional[FaultPlan],
) -> None:
    os.makedirs(quarantine_dir, exist_ok=True)
    trace_filename = f"{result.family}.trace.json"
    trace_path = os.path.join(quarantine_dir, trace_filename)
    report_path = os.path.join(quarantine_dir,
                               f"{result.family}.violation.json")
    minimized = result.shrunk.stream if result.shrunk is not None else stream
    save_trace(minimized, trace_path)
    document = _violation_document(result, config, modes, backends, plan,
                                   trace_filename)
    with open(report_path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    result.trace_path = trace_path
    result.report_path = report_path


def replay_families(
    streams: Mapping[str, FrameStream],
    config: GPUConfig,
    modes: Optional[Sequence[object]] = None,
    backends: Optional[Sequence[str]] = None,
    fault_plan: Optional[FaultPlan] = None,
    quarantine_dir: str = "",
    strict: bool = False,
    shrink: bool = True,
    max_shrink_evals: int = DEFAULT_MAX_EVALS,
) -> List[FamilyResult]:
    """Differentially validate every corpus stream.

    Args:
        streams: family name -> frame stream (insertion order is the
            replay order).
        config: GPU configuration the streams target.
        modes: technique designators to cross-compare (default: every
            registered technique).
        backends: kernel backends (default: the single default backend;
            pass both for the full differential gate).
        fault_plan: optional deterministic fault plan; only its
            ``pixel`` rate is meaningful here.
        quarantine_dir: where minimized violating traces and violation
            reports land ("" disables quarantining).
        strict: stop at the first violating family (fail-fast) instead
            of replaying the rest.
        shrink: minimize violating streams before quarantining.
        max_shrink_evals: predicate budget for the shrinker.

    Returns:
        One :class:`FamilyResult` per replayed family (fewer than
        ``len(streams)`` when ``strict`` stopped early).
    """
    resolved_modes: Tuple[Technique, ...] = (
        default_modes() if modes is None
        else tuple(resolve_technique(mode) for mode in modes)
    )
    registry = global_registry()
    bus = get_bus()
    results: List[FamilyResult] = []
    for family, stream in streams.items():
        corruptor = make_pixel_corruptor(fault_plan, family)

        def run_checks(candidate: FrameStream) -> ValidationReport:
            return validate_stream(candidate, config, modes=resolved_modes,
                                   backends=backends, corruptor=corruptor)

        started = time.perf_counter()
        report = run_checks(stream)
        result = FamilyResult(family=family, frames=len(stream),
                              report=report,
                              seconds=time.perf_counter() - started)
        registry.counter("corpus.families_checked").inc()
        if not report.passed:
            registry.counter("corpus.violations").inc()
            if shrink:
                result.shrunk = shrink_stream(
                    stream,
                    lambda candidate: not run_checks(candidate).passed,
                    max_evals=max_shrink_evals,
                )
                registry.counter("corpus.shrink_evals").inc(
                    result.shrunk.evals)
            if quarantine_dir:
                _quarantine_violation(result, stream, quarantine_dir,
                                      config, resolved_modes,
                                      backends or (), fault_plan)
        result.seconds = time.perf_counter() - started
        if bus.enabled:
            bus.emit(CorpusFamilyChecked(
                family=family,
                frames=result.frames,
                seconds=result.seconds,
                passed=result.passed,
                checks=len(report.checks),
                failures=len(report.failures),
                shrink_evals=(result.shrunk.evals
                              if result.shrunk is not None else 0),
            ))
        results.append(result)
        if strict and not result.passed:
            break
    return results
