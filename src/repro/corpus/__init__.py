"""The adversarial workload corpus and its differential replay gate.

The paper's evaluation runs 20 well-behaved benchmark scenes; this
package holds the inputs nobody hand-codes.  It has three layers:

* :mod:`~repro.corpus.families` — named, seeded stress-scene families
  (degenerate geometry, slivers, particle storms, orbit churn, stereo
  double-wide, deep depth stacks, hidden motion), each a deterministic
  :class:`~repro.commands.FrameStream` builder.
* :mod:`~repro.corpus.store` — serialization to portable on-disk
  ``repro-trace`` files plus a sha256-pinned manifest.
* :mod:`~repro.corpus.gate` — the differential replay gate: every
  stream through :func:`repro.validate.validate_stream` across all
  pipeline modes x kernel backends, violations shrunk to minimized
  repro traces (:mod:`~repro.corpus.shrink`) and quarantined with JSON
  violation reports.

Driven by ``repro corpus build|list|replay`` on the command line; the
CI ``corpus-gate`` job replays the committed tiny-preset corpus under
``--strict`` on every push.
"""

from .families import (
    FAMILIES,
    StressFamily,
    family_names,
    family_stream,
    get_family,
)
from .gate import FamilyResult, make_pixel_corruptor, replay_families
from .shrink import DEFAULT_MAX_EVALS, ShrinkOutcome, shrink_stream
from .store import (
    CORPUS_FORMAT,
    CORPUS_VERSION,
    MANIFEST_NAME,
    build_corpus,
    load_corpus,
    read_manifest,
    trace_filename,
)

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "DEFAULT_MAX_EVALS",
    "FAMILIES",
    "FamilyResult",
    "MANIFEST_NAME",
    "ShrinkOutcome",
    "StressFamily",
    "build_corpus",
    "family_names",
    "family_stream",
    "get_family",
    "load_corpus",
    "make_pixel_corruptor",
    "read_manifest",
    "replay_families",
    "shrink_stream",
    "trace_filename",
]
