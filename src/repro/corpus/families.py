"""The stress-family registry: named, seeded adversarial workloads.

A :class:`StressFamily` binds a corpus name to one of the deterministic
builders in :mod:`repro.scenes.stress` plus the default seed the
committed corpus was generated with.  Families are the corpus's unit of
everything: one trace file per family on disk, one differential
validation per family in the replay gate, one quarantined repro per
violating family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..commands import FrameStream
from ..config import GPUConfig
from ..errors import CorpusError
from ..scenes import stress

FamilyBuilder = Callable[[GPUConfig, int], FrameStream]


@dataclass(frozen=True)
class StressFamily:
    """One named adversarial workload class.

    Attributes:
        name: registry key and trace-file stem.
        description: what the family stresses (shown by ``corpus list``).
        adversary: the pipeline property it attacks, one short tag.
        builder: deterministic ``(config, seed) -> FrameStream``.
        default_seed: seed the committed corpus uses.
    """

    name: str
    description: str
    adversary: str
    builder: FamilyBuilder
    default_seed: int = 0

    def stream(self, config: GPUConfig,
               seed: Optional[int] = None) -> FrameStream:
        return self.builder(
            config, self.default_seed if seed is None else seed)


def _registry() -> Dict[str, StressFamily]:
    entries = [
        StressFamily(
            "degenerate",
            "zero-area, collinear, point and off-screen primitives mixed "
            "with honest movers",
            adversary="rasterizer edge cases",
            builder=stress.degenerate_stream,
            default_seed=11,
        ),
        StressFamily(
            "sliver",
            "sub-pixel hairline bands and tile-crossing diagonal slivers "
            "drifting by fractions of a pixel",
            adversary="conservative coverage",
            builder=stress.sliver_stream,
            default_seed=12,
        ),
        StressFamily(
            "particle-storm",
            "emitters of per-frame-jittering 1-3px quads under a "
            "translucent ember layer",
            adversary="binning/blending flood",
            builder=stress.particle_storm_stream,
            default_seed=13,
        ),
        StressFamily(
            "orbit-churn",
            "camera orbiting a full revolution every ~5 frames over a "
            "box field with a HUD",
            adversary="RE signature churn",
            builder=stress.orbit_churn_stream,
            default_seed=14,
        ),
        StressFamily(
            "stereo",
            "double-wide frame: the same sprites drawn into both halves "
            "with a small parallax",
            adversary="tile indexing / cross-eye redundancy",
            builder=stress.stereo_stream,
            default_seed=15,
        ),
        StressFamily(
            "depth-stack",
            "twelve full-screen depth-tested layers back-to-front with a "
            "mid-stack mover and a blended veil",
            adversary="deep depth complexity",
            builder=stress.depth_stack_stream,
            default_seed=16,
        ),
        StressFamily(
            "hidden-motion",
            "sprites jittering under an opaque cover plus one mover "
            "straddling the cover's edge",
            adversary="EVR-vs-RE disagreement surface",
            builder=stress.hidden_motion_stream,
            default_seed=17,
        ),
    ]
    return {family.name: family for family in entries}


FAMILIES: Dict[str, StressFamily] = _registry()


def family_names() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(FAMILIES))


def get_family(name: str) -> StressFamily:
    try:
        return FAMILIES[name]
    except KeyError:
        raise CorpusError(
            f"unknown stress family {name!r}; known: "
            f"{', '.join(family_names())}"
        ) from None


def family_stream(name: str, config: GPUConfig,
                  seed: Optional[int] = None) -> FrameStream:
    """Build one family's deterministic frame stream under ``config``."""
    return get_family(name).stream(config, seed=seed)
