"""Corpus persistence: one trace file per family plus a manifest.

A built corpus directory looks like::

    corpus/tiny/
    ├── manifest.json            # format, GPU config, per-family records
    ├── degenerate.trace.json    # repro-trace v1 (repro.commands.trace)
    ├── sliver.trace.json
    └── ...

The manifest pins everything needed to regenerate or verify the traces:
the GPU configuration they were generated under, each family's seed,
and a sha256 of each trace file so a tampered or bit-rotted corpus is
rejected at load time instead of producing confusing downstream diffs.
Trace files themselves are the portable ``repro-trace`` JSON format, so
any corpus stream can also be fed to ``repro trace replay`` directly.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..commands import FrameStream
from ..commands.trace import load_trace, save_trace
from ..config import GPUConfig
from ..errors import CorpusError
from .families import family_names, get_family

MANIFEST_NAME = "manifest.json"
CORPUS_FORMAT = "repro-corpus"
CORPUS_VERSION = 1


def trace_filename(family: str) -> str:
    return f"{family}.trace.json"


def _sha256_of(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        digest.update(handle.read())
    return digest.hexdigest()


def build_corpus(
    directory: str,
    config: GPUConfig,
    names: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Generate and serialize the corpus into ``directory``.

    Args:
        directory: output directory (created if missing).
        config: GPU configuration the streams are generated under;
            recorded in the manifest.
        names: families to build (default: all registered).
        seed: override every family's default seed (default: each
            family keeps its own).

    Returns:
        The manifest document that was written.
    """
    selected = list(names) if names else list(family_names())
    os.makedirs(directory, exist_ok=True)
    records: Dict[str, Dict[str, object]] = {}
    for name in selected:
        family = get_family(name)
        family_seed = family.default_seed if seed is None else seed
        stream = family.builder(config, family_seed)
        filename = trace_filename(name)
        path = os.path.join(directory, filename)
        save_trace(stream, path)
        frames = list(stream)
        records[name] = {
            "file": filename,
            "seed": family_seed,
            "frames": len(frames),
            "draws": sum(len(frame.commands) for frame in frames),
            "triangles": sum(frame.triangle_count for frame in frames),
            "sha256": _sha256_of(path),
            "description": family.description,
            "adversary": family.adversary,
        }
    manifest = {
        "format": CORPUS_FORMAT,
        "version": CORPUS_VERSION,
        "gpu": {
            "screen_width": config.screen_width,
            "screen_height": config.screen_height,
            "frames": config.frames,
        },
        "families": records,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def read_manifest(directory: str) -> Dict[str, object]:
    """Load and validate ``directory``'s corpus manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise CorpusError(
            f"no corpus manifest at {path!r} (build one with "
            f"`repro corpus build`)"
        ) from None
    except ValueError as error:
        raise CorpusError(f"corrupt corpus manifest {path!r}: {error}"
                          ) from error
    if manifest.get("format") != CORPUS_FORMAT:
        raise CorpusError(f"{path!r} is not a corpus manifest")
    if manifest.get("version") != CORPUS_VERSION:
        raise CorpusError(
            f"unsupported corpus version {manifest.get('version')!r}; "
            f"this build reads version {CORPUS_VERSION}"
        )
    return manifest


def load_corpus(
    directory: str,
    names: Optional[Sequence[str]] = None,
) -> Tuple[Dict[str, FrameStream], Dict[str, object]]:
    """Load corpus streams from ``directory``, verifying integrity.

    Every requested trace file's sha256 is checked against the manifest
    before decoding, so a truncated or edited trace fails loudly here
    rather than as a mysterious pixel diff in the gate.

    Returns:
        ``(streams, manifest)`` with streams keyed by family name in
        manifest order.
    """
    manifest = read_manifest(directory)
    records = manifest.get("families", {})
    selected: List[str] = list(names) if names else sorted(records)
    streams: Dict[str, FrameStream] = {}
    for name in selected:
        record = records.get(name)
        if record is None:
            raise CorpusError(
                f"corpus at {directory!r} has no family {name!r} "
                f"(has: {', '.join(sorted(records))})"
            )
        path = os.path.join(directory, record["file"])
        if not os.path.exists(path):
            raise CorpusError(f"corpus trace missing: {path!r}")
        digest = _sha256_of(path)
        if digest != record.get("sha256"):
            raise CorpusError(
                f"corpus trace {path!r} does not match its manifest "
                f"digest (expected {str(record.get('sha256'))[:12]}..., "
                f"got {digest[:12]}...); rebuild the corpus"
            )
        streams[name] = load_trace(path)
    return streams, manifest
