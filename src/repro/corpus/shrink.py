"""Delta-debugging shrinker: minimize a violating frame stream.

When the differential gate catches a contract violation, the offending
stream is rarely minimal — a corpus family renders several frames of
dozens of draw commands each, and the violation usually needs only a
handful.  :func:`shrink_stream` reduces the stream in two phases while
re-checking the caller's failure predicate after every cut:

1. **Frames** — binary-search the shortest failing *prefix* of frames.
   Prefixes (rather than arbitrary subsets) preserve the temporal
   semantics the contracts depend on: RE and EVR compare each frame
   against its predecessor, so removing a middle frame changes what
   "redundant" means, while truncating the tail cannot.
2. **Draws** — greedy ddmin over draw-command *positions*: try dropping
   chunks of command indices (applied across every surviving frame so
   commands keep their cross-frame identity), halving the chunk size
   until single commands are tried.  Frames must stay non-empty (a
   :class:`~repro.commands.Frame` rejects an empty command list).

The predicate is evaluated at most ``max_evals`` times — each call
typically renders the candidate under every (mode, backend) pair, so
the budget, not asymptotics, is the real cost bound.  The result is
always verified: if a final check of the minimized stream no longer
fails (a flaky or non-monotonic predicate), the original stream is
returned instead — a quarantined repro that does not reproduce would be
worse than an unminimized one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..commands import Frame, FrameStream

Predicate = Callable[[FrameStream], bool]

#: Default predicate-evaluation budget.  Each evaluation re-renders the
#: candidate under every (mode, backend) pair, so this bounds gate
#: latency on a violation, not memory.
DEFAULT_MAX_EVALS = 48


@dataclass
class ShrinkOutcome:
    """What the shrinker achieved for one violating stream."""

    stream: FrameStream
    frames: int
    draws: int
    original_frames: int
    original_draws: int
    evals: int
    minimal: bool  # the final verification re-confirmed the failure

    @property
    def reduced(self) -> bool:
        return (self.frames < self.original_frames
                or self.draws < self.original_draws)


def _draw_count(frames: Sequence[Frame]) -> int:
    return sum(len(frame.commands) for frame in frames)


def _rebuild(frames: Sequence[Frame], keep: Sequence[int]) -> List[Frame]:
    """Frames with only the draw positions in ``keep`` retained (and
    re-indexed from 0 so the stream stays well-formed)."""
    kept = set(keep)
    rebuilt = []
    for new_index, frame in enumerate(frames):
        commands = [command for position, command in
                    enumerate(frame.commands) if position in kept]
        rebuilt.append(Frame(commands, view=frame.view,
                             projection=frame.projection, index=new_index))
    return rebuilt


def shrink_stream(stream: FrameStream, still_fails: Predicate,
                  max_evals: int = DEFAULT_MAX_EVALS) -> ShrinkOutcome:
    """Minimize ``stream`` while ``still_fails`` keeps returning True.

    Args:
        stream: the violating stream (fully materialized internally).
        still_fails: the failure predicate; must be deterministic for
            the minimization to converge.
        max_evals: predicate-evaluation budget across both phases.
    """
    frames = list(stream)
    original_frames = len(frames)
    original_draws = _draw_count(frames)
    evals = 0

    def check(candidate: List[Frame]) -> bool:
        nonlocal evals
        evals += 1
        return still_fails(FrameStream.from_frames(candidate))

    # Phase 1: shortest failing prefix, by binary search on its length.
    low, high = 1, len(frames)
    while low < high and evals < max_evals:
        mid = (low + high) // 2
        if check(frames[:mid]):
            high = mid
        else:
            low = mid + 1
    candidate = frames[:high]

    # Phase 2: ddmin over draw positions, chunked, across all frames.
    width = max(len(frame.commands) for frame in candidate)
    keep = list(range(width))
    chunk = max(1, len(keep) // 2)
    while chunk >= 1 and evals < max_evals:
        position = 0
        progressed = False
        while position < len(keep) and evals < max_evals:
            trial = keep[:position] + keep[position + chunk:]
            rebuilt = (_rebuild(candidate, trial)
                       if trial and all(
                           any(p in set(trial)
                               for p in range(len(frame.commands)))
                           for frame in candidate)
                       else None)
            if rebuilt is not None and check(rebuilt):
                keep = trial
                progressed = True
                # Do not advance: the next chunk slid into `position`.
            else:
                position += chunk
        if chunk == 1 and not progressed:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 0

    minimized = _rebuild(candidate, keep)

    # Verification: the minimized stream must still fail, else fall all
    # the way back to the original (a repro must reproduce).
    minimal = True
    if evals < max_evals:
        minimal = check(minimized)
    if not minimal:
        minimized = frames

    return ShrinkOutcome(
        stream=FrameStream.from_frames(minimized),
        frames=len(minimized),
        draws=_draw_count(minimized),
        original_frames=original_frames,
        original_draws=original_draws,
        evals=evals,
        minimal=minimal,
    )
