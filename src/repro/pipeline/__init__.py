"""The TBR graphics pipeline (Figure 1), functional + event-counting.

* :mod:`repro.pipeline.rasterizer` — edge-function triangle rasterization
  restricted to one tile, producing fragment batches.
* :mod:`repro.pipeline.geometry` — the Geometry Pipeline: vertex fetch and
  shading, primitive assembly, and the Polygon List Builder with all the
  EVR hooks (layer assignment, prediction, reordering, signatures).
* :mod:`repro.pipeline.raster` — the Raster Pipeline: per-tile render loop
  with Early Depth Test, fragment shading, blending and FVP bookkeeping.
* :mod:`repro.pipeline.gpu` — the top-level GPU: feature flags, the frame
  loop, and result collection.
"""

from .rasterizer import FragmentBatch, rasterize_in_tile
from .features import PipelineFeatures, PipelineMode
from .gpu import GPU, FrameResult, RunResult

__all__ = [
    "FragmentBatch",
    "rasterize_in_tile",
    "PipelineFeatures",
    "PipelineMode",
    "GPU",
    "FrameResult",
    "RunResult",
]
