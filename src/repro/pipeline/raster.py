"""The Raster Pipeline: per-tile rendering with Early-Z and blending.

Tiles are processed sequentially.  For each tile the Display List is
drained (first list, then second list — Algorithm 1's order), every
primitive is rasterized against the tile, fragments run through the Early
Depth Test, survivors are shaded (cost-modelled) and blended into the
Color Buffer, and at end of tile the colors are flushed to memory and —
under EVR — the tile's FVP is computed and stored for the next frame.

Rendering Elimination intercepts tiles before any of this: a signature
match reuses the previous frame's colors and skips the whole tile.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..commands import BlendMode
from ..config import GPUConfig
from ..core.evr import VisibilityPredictor
from ..core.oracle import OracleTileComparator
from ..core.rendering_elimination import RenderingElimination
from ..hw.buffers import ColorBuffer, LayerBuffer, ZBuffer
from ..hw.parameter_buffer import POINTER_BYTES, ParameterBuffer
from ..memsys import MemorySystem
from ..timing import FrameStats
from .features import PipelineFeatures
from .rasterizer import rasterize_in_tile

_ALPHA_OPAQUE = 1.0 - 1e-9


class RasterPipeline:
    """Runs the raster half of the pipeline for one frame at a time."""

    def __init__(
        self,
        config: GPUConfig,
        features: PipelineFeatures,
        memory: MemorySystem,
        parameter_buffer: ParameterBuffer,
        predictor: Optional[VisibilityPredictor],
        rendering_elimination: Optional[RenderingElimination],
        comparator: Optional[OracleTileComparator],
    ):
        self.config = config
        self.features = features
        self.memory = memory
        self.parameter_buffer = parameter_buffer
        self.predictor = predictor
        self.re = rendering_elimination
        self.comparator = comparator

        self.z_buffer = ZBuffer(config.tile_width, config.tile_height,
                                config.clear_depth)
        self.color_buffer = ColorBuffer(config.tile_width, config.tile_height,
                                        config.clear_color)
        self.layer_buffer = LayerBuffer(config.tile_width, config.tile_height)

    def render_frame(
        self,
        image: np.ndarray,
        previous_image: Optional[np.ndarray],
        stats: FrameStats,
    ) -> None:
        """Render every tile of the frame into ``image`` (H, W, 4).

        Args:
            image: output framebuffer for this frame, modified in place.
            previous_image: last frame's framebuffer; the source of colors
                for RE-skipped tiles (None on the first frame, when RE
                can never skip).
            stats: frame counters, updated in place.
        """
        config = self.config
        for tile_y in range(config.tiles_y):
            for tile_x in range(config.tiles_x):
                tile = tile_y * config.tiles_x + tile_x
                stats.tiles_total += 1
                if self._try_skip_tile(tile, tile_x, tile_y, image,
                                       previous_image, stats):
                    continue
                self._render_tile(tile, tile_x, tile_y, image, stats)

    # -- tile skipping (Rendering Elimination) ------------------------------

    def _try_skip_tile(
        self,
        tile: int,
        tile_x: int,
        tile_y: int,
        image: np.ndarray,
        previous_image: Optional[np.ndarray],
        stats: FrameStats,
    ) -> bool:
        if self.re is None:
            return False
        stats.signature_checks += 1
        if not self.re.should_skip_tile(tile):
            return False
        if previous_image is None:
            # Cannot happen: signatures never match before frame 1, but
            # guard against a scene with a single frame.
            return False
        stats.tiles_skipped += 1
        rows, cols = self._tile_region(tile_x, tile_y)
        image[rows, cols] = previous_image[rows, cols]
        return True

    # -- tile rendering -------------------------------------------------------

    def _render_tile(
        self,
        tile: int,
        tile_x: int,
        tile_y: int,
        image: np.ndarray,
        stats: FrameStats,
    ) -> None:
        config = self.config
        stats.tiles_rendered += 1
        self.z_buffer.clear()
        self.color_buffer.clear()
        if self.features.uses_layers:
            self.layer_buffer.clear()

        x0 = tile_x * config.tile_width
        y0 = tile_y * config.tile_height
        valid = self._valid_mask(x0, y0)
        display_list = self.parameter_buffer.display_list(tile)

        if self.features.oracle_z:
            self._oracle_depth_prepass(display_list, x0, y0, valid)
        elif self.features.z_prepass:
            self._charged_depth_prepass(display_list, x0, y0, valid, stats)

        # Per-pixel count of shaded contributions not yet made useless by
        # an opaque overwrite; feeds the overshading metric of Figure 8.
        pending = np.zeros((config.tile_height, config.tile_width), dtype=np.int32)
        # Per-pixel misprediction taint: set when a *predicted-occluded*
        # primitive contributes to the pixel's final color.  Any taint
        # left at end of tile poisons the signature (see DESIGN.md,
        # "Correctness repair").
        taint = np.zeros((config.tile_height, config.tile_width), dtype=bool)

        for entry in display_list:
            self._render_primitive(entry, x0, y0, valid, pending, taint, stats)

        flush_bytes = self.color_buffer.byte_size
        self.memory.framebuffer_flush(flush_bytes)
        stats.color_flush_bytes += flush_bytes

        if (
            self.re is not None
            and self.features.evr_signature_filter
            and taint.any()
        ):
            self.re.poison_tile(tile)
            stats.signature_poisons += 1

        if self.features.uses_layers:
            assert self.predictor is not None
            self.predictor.record_tile(tile, self.layer_buffer, self.z_buffer)
            stats.fvp_updates += 1

        rows, cols = self._tile_region(tile_x, tile_y)
        height = rows.shape[0]
        width = cols.shape[1]
        image[rows, cols] = self.color_buffer.color[:height, :width]

        if self.comparator is not None:
            self.comparator.record_tile(
                tile, self.color_buffer.color[:height, :width]
            )

    def _render_primitive(
        self,
        entry,
        x0: int,
        y0: int,
        valid: np.ndarray,
        pending: np.ndarray,
        taint: np.ndarray,
        stats: FrameStats,
    ) -> None:
        config = self.config
        primitive = entry.primitive
        state = primitive.state

        self.memory.parameter_buffer_read(entry.pointer_offset, POINTER_BYTES)
        self.memory.parameter_buffer_read(
            entry.offset, self.parameter_buffer.attribute_bytes_per_primitive
        )
        stats.display_list_reads += 1

        if (
            self.features.hierarchical_z
            and state.depth_test
            and primitive.z_near > self.z_buffer.z_far
        ):
            # Top-of-the-Z-pyramid rejection (Section VIII): the whole
            # primitive is farther than every stored depth, so no
            # fragment can pass; skip rasterization entirely.  Safe
            # because unwritten pixels hold the far clear depth.
            stats.hiz_tests += 1
            stats.hiz_culled += 1
            return
        if self.features.hierarchical_z and state.depth_test:
            stats.hiz_tests += 1

        stats.primitives_rasterized += 1
        stats.raster_attributes += primitive.attribute_count

        batch = rasterize_in_tile(
            primitive, x0, y0, config.tile_width, config.tile_height
        )
        if batch is None:
            return
        mask = batch.mask & valid
        count = int(np.count_nonzero(mask))
        if count == 0:
            return
        stats.fragments_generated += count

        resolved_z = self.features.oracle_z or self.features.z_prepass
        if state.depth_test:
            passing = self.z_buffer.test(
                mask, batch.depth, less_equal=resolved_z
            )
            if self.features.early_z:
                # Early Depth Test: occluded fragments never reach the
                # fragment processors.
                stats.early_z_tests += count
                stats.early_z_kills += count - int(np.count_nonzero(passing))
                shaded_mask = passing
            else:
                # Late depth test only: everything is shaded, but the
                # color/depth writes still respect visibility.
                shaded_mask = mask
        else:
            passing = mask
            shaded_mask = mask

        shaded = int(np.count_nonzero(shaded_mask))
        if shaded == 0:
            return

        if primitive.writes_z:
            stats.depth_writes += self.z_buffer.write(passing, batch.depth)

        # Fragment shading (cost model + texture traffic).
        stats.fragments_shaded += shaded
        shader = state.shader
        stats.fragment_instructions += shaded * shader.fragment_instructions
        if shader.texture_fetches:
            stats.texture_samples += shaded * shader.texture_fetches
            self.memory.texture_batch(
                shader.texture_id,
                shader.texture_size,
                batch.u[shaded_mask],
                batch.v[shaded_mask],
                shader.texture_fetches,
            )

        # Blending and overshading accounting (writes gated by the depth
        # test outcome even when shading was not).
        if not passing.any():
            return
        blend_mode = state.blend
        if blend_mode is BlendMode.OPAQUE:
            opaque_mask = passing
            self.color_buffer.write(passing, batch.rgba)
        else:
            opaque_mask = passing & (batch.rgba[:, :, 3] >= _ALPHA_OPAQUE)
            self.color_buffer.blend(passing, batch.rgba)
        stats.blend_operations += int(np.count_nonzero(passing))

        stats.overdrawn_fragments += int(pending[opaque_mask].sum())
        pending[opaque_mask] = 1
        translucent_mask = passing & ~opaque_mask
        pending[translucent_mask] += 1

        # Misprediction taint: opaque writes replace the pixel's taint,
        # blended contributions accumulate it.
        taint[opaque_mask] = entry.predicted_occluded
        if entry.predicted_occluded:
            taint[translucent_mask] = True

        if self.features.uses_layers and opaque_mask.any():
            written = self.layer_buffer.write(
                opaque_mask, entry.layer, primitive.writes_z
            )
            stats.layer_buffer_writes += written

    # -- charged Z pre-pass --------------------------------------------------------

    def _charged_depth_prepass(self, display_list, x0: int, y0: int,
                               valid: np.ndarray, stats: FrameStats) -> None:
        """Depth-only first pass over the tile's WOZ geometry, with the
        real costs the paper attributes to software Z-prepass (Section
        IV-A): every primitive is rasterized again, every fragment is
        depth-tested again and the Z-buffer is written — only fragment
        *shading* is saved for the second pass.
        """
        for entry in display_list:
            primitive = entry.primitive
            if not (primitive.writes_z and primitive.state.depth_test):
                continue
            stats.prepass_primitives += 1
            batch = rasterize_in_tile(
                primitive, x0, y0,
                self.config.tile_width, self.config.tile_height,
            )
            if batch is None:
                continue
            mask = batch.mask & valid
            count = int(np.count_nonzero(mask))
            if count == 0:
                continue
            stats.prepass_fragments += count
            closer = self.z_buffer.test(mask, batch.depth)
            stats.prepass_depth_writes += self.z_buffer.write(
                closer, batch.depth
            )

    # -- oracle Z pre-pass -------------------------------------------------------

    def _oracle_depth_prepass(self, display_list, x0: int, y0: int,
                              valid: np.ndarray) -> None:
        """Fill the Z-buffer with the tile's final depths, for free.

        Models Figure 8's oracle: perfect visibility information in the
        Z-buffer before the tile executes.  Only WOZ primitives determine
        final depths.
        """
        for entry in display_list:
            primitive = entry.primitive
            if not primitive.writes_z:
                continue
            batch = rasterize_in_tile(
                primitive, x0, y0,
                self.config.tile_width, self.config.tile_height,
            )
            if batch is None:
                continue
            mask = batch.mask & valid
            if not mask.any():
                continue
            closer = self.z_buffer.test(mask, batch.depth)
            self.z_buffer.write(closer, batch.depth)

    # -- helpers ---------------------------------------------------------------------

    def _tile_region(self, tile_x: int, tile_y: int):
        """Index arrays selecting the tile's on-screen pixels."""
        config = self.config
        y0 = tile_y * config.tile_height
        x0 = tile_x * config.tile_width
        y1 = min(y0 + config.tile_height, config.screen_height)
        x1 = min(x0 + config.tile_width, config.screen_width)
        rows = np.arange(y0, y1)[:, None]
        cols = np.arange(x0, x1)[None, :]
        return rows, cols

    def _valid_mask(self, x0: int, y0: int) -> np.ndarray:
        """True for tile pixels that are actually on screen (edge tiles
        of non-divisible resolutions are partial)."""
        config = self.config
        mask = np.ones((config.tile_height, config.tile_width), dtype=bool)
        overflow_x = x0 + config.tile_width - config.screen_width
        overflow_y = y0 + config.tile_height - config.screen_height
        if overflow_x > 0:
            mask[:, config.tile_width - overflow_x:] = False
        if overflow_y > 0:
            mask[config.tile_height - overflow_y:, :] = False
        return mask
