"""The Raster Pipeline: per-tile rendering through the execution engine.

For each tile the Display List is drained (first list, then second list —
Algorithm 1's order), every primitive is rasterized against the tile,
fragments run through the Early Depth Test, survivors are shaded
(cost-modelled) and blended into the Color Buffer, and at end of tile the
colors are flushed to memory and — under EVR — the tile's FVP is computed
and stored for the next frame.

Rendering Elimination intercepts tiles before any of this: a signature
match reuses the previous frame's colors and skips the whole tile.

Since the execution-engine refactor, the per-tile work itself lives in
:class:`repro.engine.TileJob`; this module *schedules* tiles (the RE skip
check is a scheduling decision), fans the surviving jobs out through the
configured :class:`~repro.engine.Scheduler`, and *reduces* the returned
:class:`~repro.engine.TileResult`s in tile order — merging counters,
replaying memory traces, updating the FVP/signature state and writing the
framebuffer.  The reduction order is fixed, so serial and parallel
schedulers produce identical frames and identical metrics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import GPUConfig
from ..core.evr import VisibilityPredictor
from ..core.oracle import OracleTileComparator
from ..core.rendering_elimination import RenderingElimination
from ..engine.scheduler import Scheduler, SerialScheduler
from ..engine.tile_job import (
    TileJob,
    TileResult,
    execute_tile_job,
    replay_memory_trace,
)
from ..hw.parameter_buffer import ParameterBuffer
from ..kernels import DEFAULT_BACKEND, normalize_backend
from ..kernels.tile_geometry import tile_region
from ..memsys import MemorySystem
from ..obs.trace import get_tracer
from ..timing import FrameStats
from .features import PipelineFeatures


class RasterPipeline:
    """Runs the raster half of the pipeline for one frame at a time."""

    def __init__(
        self,
        config: GPUConfig,
        features: PipelineFeatures,
        memory: MemorySystem,
        parameter_buffer: ParameterBuffer,
        predictor: Optional[VisibilityPredictor],
        rendering_elimination: Optional[RenderingElimination],
        comparator: Optional[OracleTileComparator],
        scheduler: Optional[Scheduler] = None,
        backend: str = DEFAULT_BACKEND,
        dsr=None,
    ):
        self.config = config
        self.features = features
        self.memory = memory
        self.parameter_buffer = parameter_buffer
        self.predictor = predictor
        self.re = rendering_elimination
        self.comparator = comparator
        self.scheduler: Scheduler = scheduler or SerialScheduler()
        self.backend = normalize_backend(backend)
        self.dsr = dsr

    def render_frame(
        self,
        image: np.ndarray,
        previous_image: Optional[np.ndarray],
        stats: FrameStats,
    ) -> None:
        """Render every tile of the frame into ``image`` (H, W, 4).

        Args:
            image: output framebuffer for this frame, modified in place.
            previous_image: last frame's framebuffer; the source of colors
                for RE-skipped tiles (None on the first frame, when RE
                can never skip).
            stats: frame counters, updated in place.
        """
        config = self.config
        tracer = get_tracer()
        jobs: List[TileJob] = []
        with tracer.span("schedule", category="raster"):
            for tile_y in range(config.tiles_y):
                for tile_x in range(config.tiles_x):
                    tile = tile_y * config.tiles_x + tile_x
                    stats.tiles_total += 1
                    if self._try_skip_tile(tile, tile_x, tile_y, image,
                                           previous_image, stats):
                        continue
                    jobs.append(TileJob(
                        tile=tile,
                        tile_x=tile_x,
                        tile_y=tile_y,
                        config=config,
                        features=self.features,
                        entries=list(
                            self.parameter_buffer.display_list(tile)
                        ),
                        attribute_bytes=(
                            self.parameter_buffer.attribute_bytes_per_primitive
                        ),
                        backend=self.backend,
                        # Technique inputs are resolved here, parent-side,
                        # so every scheduler renders bit-identically.
                        dsr_rate=(
                            self.dsr.rate_for_tile(tile)
                            if self.dsr is not None else 1.0
                        ),
                        history=self._tile_history(
                            tile_x, tile_y, previous_image
                        ),
                    ))

        with tracer.span("execute", category="raster", tiles=len(jobs)):
            results = self.scheduler.map(execute_tile_job, jobs)
        # The reduce phase splits into two independent sub-loops so the
        # bench can attribute its cost: replaying the recorded memory
        # traces (the historical bottleneck) versus folding the
        # functional results into the frame.  ``drain()`` pins deferred
        # batched-model work inside the replay span.
        with tracer.span("reduce", category="raster", tiles=len(jobs)):
            with tracer.span("reduce-replay", category="raster",
                             tiles=len(jobs)):
                for result in results:
                    stats.merge(result.stats)
                    replay_memory_trace(result.memory_ops, self.memory)
                self.memory.drain()
            with tracer.span("reduce-finalize", category="raster",
                             tiles=len(jobs)):
                for job, result in zip(jobs, results):
                    self._reduce_tile(job, result, image, stats)

    # -- tile skipping (Rendering Elimination) ------------------------------

    def _try_skip_tile(
        self,
        tile: int,
        tile_x: int,
        tile_y: int,
        image: np.ndarray,
        previous_image: Optional[np.ndarray],
        stats: FrameStats,
    ) -> bool:
        if self.re is None:
            return False
        stats.signature_checks += 1
        if not self.re.should_skip_tile(tile):
            return False
        if previous_image is None:
            # Cannot happen: signatures never match before frame 1, but
            # guard against a scene with a single frame.
            return False
        stats.tiles_skipped += 1
        rows, cols = self._tile_region(tile_x, tile_y)
        image[rows, cols] = previous_image[rows, cols]
        return True

    # -- result reduction ----------------------------------------------------

    def _reduce_tile(
        self,
        job: TileJob,
        result: TileResult,
        image: np.ndarray,
        stats: FrameStats,
    ) -> None:
        """Fold one tile's result into the frame — always in tile order.

        Stats merging and memory-trace replay happen in the dedicated
        replay sub-loop of :meth:`render_frame` before this runs.
        """
        if (
            self.re is not None
            and self.features.evr_signature_filter
            and result.tainted
        ):
            self.re.poison_tile(job.tile)
            stats.signature_poisons += 1

        if self.features.uses_layers:
            assert self.predictor is not None
            assert result.layer_buffer is not None
            assert result.z_buffer is not None
            self.predictor.record_tile(
                job.tile, result.layer_buffer, result.z_buffer
            )

        rows, cols = self._tile_region(job.tile_x, job.tile_y)
        height = rows.shape[0]
        width = cols.shape[1]
        image[rows, cols] = result.color[:height, :width]

        if self.comparator is not None:
            self.comparator.record_tile(
                job.tile, result.color[:height, :width]
            )

    # -- helpers ---------------------------------------------------------------------

    def _tile_history(
        self,
        tile_x: int,
        tile_y: int,
        previous_image: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Previous-frame framebuffer slice for FHV reconstruction.

        Returns a full tile-sized array (edge tiles clear-padded) or
        None when the feature is off / on the first frame.
        """
        if not self.features.fhv or previous_image is None:
            return None
        config = self.config
        rows, cols = self._tile_region(tile_x, tile_y)
        history = np.empty(
            (config.tile_height, config.tile_width, 4),
            dtype=previous_image.dtype,
        )
        history[:, :] = config.clear_color
        history[:rows.shape[0], :cols.shape[1]] = previous_image[rows, cols]
        return history

    def _tile_region(self, tile_x: int, tile_y: int):
        """Index arrays selecting the tile's on-screen pixels (shared
        tile-geometry definition; see :mod:`repro.kernels.tile_geometry`)."""
        config = self.config
        return tile_region(tile_x, tile_y,
                           config.tile_width, config.tile_height,
                           config.screen_width, config.screen_height)
