"""The simulated GPU: frame loop, feature wiring and result collection.

A :class:`GPU` owns one memory system, one Parameter Buffer and — when the
corresponding features are on — the Rendering Elimination controller and
the EVR structures.  :meth:`GPU.render_stream` consumes a
:class:`repro.commands.FrameStream` and returns a :class:`RunResult` with
per-frame statistics, memory snapshots and the rendered images.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..commands import Frame, FrameStream
from ..config import GPUConfig
from ..core.evr import VisibilityPredictor
from ..core.oracle import OracleTileComparator
from ..core.subtile import SubTileVisibilityPredictor
from ..core.rendering_elimination import RenderingElimination
from ..engine.instrumentation import Instrumentation, merge_unit_counters
from ..engine.scheduler import Scheduler
from ..errors import PipelineError
from ..hw.lgt import LayerGeneratorTable
from ..hw.parameter_buffer import ParameterBuffer
from ..kernels import normalize_backend
from ..memsys import create_memory_system
from ..obs.events import PhaseCompleted, cache_ops_of, get_bus
from ..obs.trace import get_tracer
from ..techniques.dsr import DSRController
from ..techniques.registry import resolve_features
from ..timing import CostModel, CostParameters, FrameStats, StatsAccumulator
from ..energy import EnergyBreakdown, EnergyModel, EnergyParameters
from .features import PipelineFeatures, PipelineMode
from .geometry import GeometryPipeline
from .raster import RasterPipeline


@dataclass
class FrameResult:
    """Everything measured while rendering one frame.

    The two pipeline phases each contribute one mergeable
    :class:`~repro.engine.Instrumentation` record (memory-unit counters
    plus DRAM roofline cycles); the historical ``*_snapshot`` /
    ``*_dram_cycles`` accessors remain as read-only views.
    """

    index: int
    stats: FrameStats
    image: np.ndarray
    geometry: Instrumentation
    raster: Instrumentation

    @property
    def geometry_snapshot(self) -> Dict[str, Dict[str, int]]:
        return self.geometry.units

    @property
    def raster_snapshot(self) -> Dict[str, Dict[str, int]]:
        return self.raster.units

    @property
    def geometry_dram_cycles(self) -> float:
        return self.geometry.dram_cycles

    @property
    def raster_dram_cycles(self) -> float:
        return self.raster.dram_cycles

    def merged_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Geometry + raster memory counters combined (for energy)."""
        merged: Dict[str, Dict[str, int]] = {}
        merge_unit_counters(merged, self.geometry.units)
        merge_unit_counters(merged, self.raster.units)
        return merged


@dataclass
class RunResult:
    """All frames of a run plus the models needed to cost them."""

    config: GPUConfig
    features: PipelineFeatures
    frames: List[FrameResult] = field(default_factory=list)
    comparator: Optional[OracleTileComparator] = None
    predictor: Optional[VisibilityPredictor] = None
    re_controller: Optional[RenderingElimination] = None
    cost_model: Optional[CostModel] = None
    energy_model: Optional[EnergyModel] = None

    DEFAULT_WARMUP = 2

    def _steady_frames(self, warmup: int) -> List[FrameResult]:
        """Frames past the warm-up transient.

        Frame 0 has no previous-frame information (RE and EVR behave as
        the baseline) and frame 1 is EVR's prediction transient: its
        signatures were built *with* exclusions while frame 0's were
        built without, so they cannot match yet.  The paper's 60-frame
        measurements amortize this; with short runs we drop the warm-up
        explicitly.  If the run is shorter than the warm-up, all frames
        are used.
        """
        if warmup and len(self.frames) > warmup:
            return self.frames[warmup:]
        return self.frames

    def total_stats(self, warmup: int = DEFAULT_WARMUP) -> FrameStats:
        """Aggregate counters over steady-state frames."""
        accumulator = StatsAccumulator()
        for frame_result in self._steady_frames(warmup):
            accumulator.add(frame_result.stats)
        return accumulator.total()

    def total_cycles(self, warmup: int = DEFAULT_WARMUP) -> "CycleTotals":
        """Geometry/Raster cycle totals over steady-state frames."""
        if self.cost_model is None:
            raise PipelineError(
                "RunResult has no cost model attached; cycle totals are "
                "only available on results produced by GPU.render_stream"
            )
        geometry = 0.0
        raster = 0.0
        for frame_result in self._steady_frames(warmup):
            geometry += self.cost_model.geometry_cycles(
                frame_result.stats, frame_result.geometry_dram_cycles
            )
            raster += self.cost_model.raster_cycles(
                frame_result.stats, frame_result.raster_dram_cycles
            )
        return CycleTotals(geometry=geometry, raster=raster)

    def total_energy(self, warmup: int = DEFAULT_WARMUP) -> EnergyBreakdown:
        """Energy breakdown over steady-state frames."""
        if self.energy_model is None:
            raise PipelineError(
                "RunResult has no energy model attached; energy totals are "
                "only available on results produced by GPU.render_stream"
            )
        stats = self.total_stats(warmup)
        merged: Dict[str, Dict[str, int]] = {}
        for frame_result in self._steady_frames(warmup):
            merge_unit_counters(merged, frame_result.merged_snapshot())
        cycles = self.total_cycles(warmup)
        return self.energy_model.compute(
            stats,
            merged,
            cycles.total,
            evr_enabled=self.features.evr_hardware,
            re_enabled=self.features.rendering_elimination,
        )

    # -- headline metrics ----------------------------------------------------

    def shaded_fragments_per_pixel(self, warmup: int = DEFAULT_WARMUP) -> float:
        """Figure 8's metric: average shaded fragments per screen pixel,
        over rendered frames (RE-skipped tiles contribute zero, exactly
        as skipping intends)."""
        frames = self._steady_frames(warmup)
        stats = self.total_stats(warmup)
        pixels = self.config.num_pixels * len(frames)
        return stats.fragments_shaded / pixels if pixels else 0.0

    def redundant_tile_rate(self, warmup: int = DEFAULT_WARMUP) -> float:
        """Figure 9's metric: fraction of tiles skipped (RE/EVR modes) or
        measured equal (oracle comparator)."""
        stats = self.total_stats(warmup)
        if self.features.rendering_elimination:
            return stats.tiles_skipped / stats.tiles_total if stats.tiles_total else 0.0
        if self.comparator is not None:
            return self.comparator.equal_rate
        return 0.0


@dataclass(frozen=True)
class CycleTotals:
    geometry: float
    raster: float

    @property
    def total(self) -> float:
        return self.geometry + self.raster


class GPU:
    """A tile-based-rendering GPU with selectable EVR/RE features."""

    def __init__(
        self,
        config: GPUConfig,
        features: Union[PipelineFeatures, PipelineMode, str] = "baseline",
        cost_params: CostParameters = CostParameters(),
        energy_params: EnergyParameters = EnergyParameters(),
        scheduler: Optional[Scheduler] = None,
        backend: Optional[str] = None,
        memory_system=None,
    ):
        # ``features`` accepts raw flags, a registered technique name
        # (or alias), a Technique descriptor or the legacy PipelineMode.
        features = resolve_features(features)
        self.config = config
        self.features = features
        self.scheduler = scheduler
        self.backend = normalize_backend(backend)
        # The backend knob selects the memory-system implementation too
        # (scalar reference vs batched trace consumption — bit-identical,
        # so still execution policy).  ``memory_system`` lets harness
        # code inject a recorder/proxy without subclassing the GPU.
        self.memory = (
            memory_system if memory_system is not None
            else create_memory_system(config, self.backend)
        )
        self.parameter_buffer = ParameterBuffer(config.num_tiles)
        self.lgt = LayerGeneratorTable(config.num_tiles) if features.uses_layers else None
        if not features.evr_hardware:
            self.predictor = None
        elif features.subtile_fvp:
            self.predictor = SubTileVisibilityPredictor(
                config.num_tiles, config.tile_width, config.tile_height,
                config.tiles_x,
            )
        else:
            self.predictor = VisibilityPredictor(
                config.num_tiles, history=features.fvp_history
            )
        self.re = (
            RenderingElimination(
                config.num_tiles,
                filter_occluded=features.evr_signature_filter,
            )
            if features.rendering_elimination
            else None
        )
        self.comparator = (
            OracleTileComparator() if features.oracle_redundancy else None
        )
        self.dsr = DSRController(config.num_tiles) if features.dsr else None
        self.cost_model = CostModel(config, cost_params)
        self.energy_model = EnergyModel(config, energy_params)

        self.geometry = GeometryPipeline(
            config, features, self.memory, self.parameter_buffer,
            self.lgt, self.predictor, self.re,
            dsr=self.dsr,
        )
        self.raster = RasterPipeline(
            config, features, self.memory, self.parameter_buffer,
            self.predictor, self.re, self.comparator,
            scheduler=scheduler,
            backend=self.backend,
            dsr=self.dsr,
        )
        self._previous_image: Optional[np.ndarray] = None
        self._rendering = False

    @classmethod
    def from_spec(
        cls,
        spec,
        mode: Union[PipelineFeatures, PipelineMode, str] = "baseline",
        scheduler: Optional[Scheduler] = None,
        config: Optional[GPUConfig] = None,
    ) -> "GPU":
        """Build a GPU from a :class:`repro.spec.RunSpec`.

        ``mode`` selects the pipeline variant; the spec's feature
        overrides are applied on top of the mode's feature set, and the
        spec's cost/energy parameters flow into the models.  ``config``
        overrides ``spec.gpu`` for callers that sweep resolutions or
        frame counts around a fixed spec.  The spec is duck-typed so
        this module never imports :mod:`repro.spec` (which imports the
        feature definitions from this package).  The kernel backend
        rides in ``spec.scheduler.backend`` (execution policy, outside
        the spec hash — backends are bit-identical).
        """
        return cls(
            config=config if config is not None else spec.gpu,
            features=spec.features.apply(resolve_features(mode)),
            cost_params=spec.cost,
            energy_params=spec.energy,
            scheduler=scheduler,
            backend=getattr(spec.scheduler, "backend", None),
        )

    def render_stream(self, stream: FrameStream) -> RunResult:
        """Render every frame of ``stream`` and collect results."""
        result = RunResult(
            config=self.config,
            features=self.features,
            comparator=self.comparator,
            predictor=self.predictor,
            re_controller=self.re,
            cost_model=self.cost_model,
            energy_model=self.energy_model,
        )
        for frame in stream:
            result.frames.append(self.render_frame(frame))
        return result

    def render_frame(self, frame: Frame) -> FrameResult:
        """Render a single frame through both pipelines."""
        if self._rendering:
            raise PipelineError("render_frame called re-entrantly")
        self._rendering = True
        try:
            with get_tracer().span("frame", category="frame",
                                   frame=frame.index):
                return self._render_frame(frame)
        finally:
            self._rendering = False

    def _render_frame(self, frame: Frame) -> FrameResult:
        config = self.config
        stats = FrameStats()
        tracer = get_tracer()
        bus = get_bus()
        self.parameter_buffer.reset()
        if self.lgt is not None:
            self.lgt.reset()

        # -- Geometry Pipeline --
        self.memory.reset_stats()
        phase_start = time.perf_counter()
        with tracer.span("geometry", category="phase", frame=frame.index):
            self.geometry.process_frame(frame, stats)
        geometry_instr = self.memory.instrumentation()
        if bus.enabled:
            bus.emit(PhaseCompleted(
                phase="geometry", frame=frame.index,
                seconds=time.perf_counter() - phase_start,
                cache_ops=cache_ops_of(geometry_instr),
            ))

        # -- Raster Pipeline --
        self.memory.reset_stats()
        image = np.zeros((config.screen_height, config.screen_width, 4))
        image[:, :] = np.array(config.clear_color)
        phase_start = time.perf_counter()
        with tracer.span("raster", category="phase", frame=frame.index):
            self.raster.render_frame(image, self._previous_image, stats)
        self.memory.end_frame()
        raster_instr = self.memory.instrumentation()
        if bus.enabled:
            bus.emit(PhaseCompleted(
                phase="raster", frame=frame.index,
                seconds=time.perf_counter() - phase_start,
                fragments=stats.fragments_shaded,
                cache_ops=cache_ops_of(raster_instr),
            ))

        # -- end of frame --
        if self.re is not None:
            self.re.end_frame()
        if self.dsr is not None:
            self.dsr.end_frame()
        if self.comparator is not None:
            self.comparator.end_frame()
        self._previous_image = image

        return FrameResult(
            index=frame.index,
            stats=stats,
            image=image,
            geometry=geometry_instr,
            raster=raster_instr,
        )
