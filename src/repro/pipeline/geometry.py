"""The Geometry Pipeline: vertex processing, assembly and binning.

Stages (Figure 1): vertices are fetched from memory and shaded (model-
view-projection transform), grouped into triangles, culled/clipped in
Primitive Assembly, and finally sorted into tiles by the Polygon List
Builder, which fills the Parameter Buffer and per-tile Display Lists.

All EVR hooks live in the Polygon List Builder (Figure 5): layer
assignment via the Layer Generator Table, visibility prediction via the
FVP Table, Algorithm-1 reordering into the two-part Display Lists, and
the (possibly filtered) Rendering Elimination signature updates.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..commands import DrawCommand, Frame
from ..config import GPUConfig
from ..core.evr import VisibilityPredictor
from ..core.rendering_elimination import RenderingElimination
from ..core.reorder import place_in_display_list
from ..geom import ScreenTriangle, Triangle
from ..hw.lgt import LayerGeneratorTable
from ..hw.parameter_buffer import (
    LAYER_ID_BYTES,
    POINTER_BYTES,
    DisplayListEntry,
    ParameterBuffer,
)
from ..math3d import Mat4, Vec2, viewport
from ..memsys import MemorySystem
from ..obs.trace import get_tracer
from ..techniques.dsr import dsr_signature
from ..timing import FrameStats
from .features import PipelineFeatures

_VERTEX_BYTES = 48
_W_EPSILON = 1e-6

# Display-list pointers live in their own Parameter Buffer region so the
# pointer stream and the attribute stream do not alias in the tile cache.
_POINTER_REGION_OFFSET = 32 * 1024 * 1024


class GeometryPipeline:
    """Runs the geometry half of the pipeline for one frame at a time."""

    def __init__(
        self,
        config: GPUConfig,
        features: PipelineFeatures,
        memory: MemorySystem,
        parameter_buffer: ParameterBuffer,
        lgt: Optional[LayerGeneratorTable],
        predictor: Optional[VisibilityPredictor],
        rendering_elimination: Optional[RenderingElimination],
        dsr=None,
    ):
        self.config = config
        self.features = features
        self.memory = memory
        self.parameter_buffer = parameter_buffer
        self.lgt = lgt
        self.predictor = predictor
        self.re = rendering_elimination
        self.dsr = dsr
        self._viewport = viewport(config.screen_width, config.screen_height)
        self._pointer_cursor = 0
        self._vertex_base = 0

    # -- vertex processing and assembly ------------------------------------

    def process_frame(self, frame: Frame, stats: FrameStats) -> None:
        """Run the full Geometry Pipeline for ``frame``."""
        self._pointer_cursor = 0
        self._vertex_base = 0
        tracer = get_tracer()
        for command_id, command in enumerate(frame.commands):
            stats.commands_processed += 1
            with tracer.span("command", category="geometry",
                             label=command.label, frame=frame.index):
                triangles = self._shade_and_assemble(
                    frame, command_id, command, stats
                )
                for triangle in triangles:
                    self._bin_primitive(triangle, command, stats)

    def _shade_and_assemble(
        self,
        frame: Frame,
        command_id: int,
        command: DrawCommand,
        stats: FrameStats,
    ) -> List[ScreenTriangle]:
        """Vertex fetch + shade + primitive assembly for one command."""
        projection = command.projection or frame.projection
        view = command.view or frame.view
        mvp = projection @ view @ command.model
        state = command.state
        survivors: List[ScreenTriangle] = []
        command_vertex_base = self._vertex_base
        self._vertex_base += command.vertex_count

        # A software Z-prepass (Section IV-A) resubmits the opaque
        # geometry with a depth-only shader: the vertex fetch, transform
        # and assembly work is paid twice for WOZ commands.
        prepass = self.features.z_prepass and state.writes_z
        depth_only_instructions = max(4, state.shader.vertex_instructions // 2)

        # The whole command's vertex stream is one consecutive index
        # range and nothing else touches memory until binning, so the
        # per-vertex fetch loop collapses into a single ranged access —
        # the same address sequence, one call.
        triangles = list(command.iter_triangles())
        self.memory.fetch_vertex_range(
            command_vertex_base, 3 * len(triangles), _VERTEX_BYTES
        )

        for tri_index, triangle in enumerate(triangles):
            stats.primitives_in += 1
            stats.vertices_fetched += 3
            stats.vertex_instructions += 3 * state.shader.vertex_instructions
            if prepass:
                stats.primitives_in += 1
                stats.vertices_fetched += 3
                stats.vertex_instructions += 3 * depth_only_instructions

            screen = self._transform_triangle(mvp, triangle, command_id,
                                              len(survivors), state)
            if screen is None or self._should_cull(screen, state):
                stats.primitives_culled += 1
                continue
            survivors.append(screen)

        stats.primitives_binned += len(survivors)
        return survivors

    def _transform_triangle(
        self,
        mvp: Mat4,
        triangle: Triangle,
        command_id: int,
        primitive_id: int,
        state,
    ) -> Optional[ScreenTriangle]:
        """Clip-test and transform one triangle to window coordinates.

        Near-plane clipping is not implemented: triangles crossing the
        camera plane are dropped entirely (the scene generators keep
        geometry safely inside the frustum).
        """
        clip = [mvp @ v.position.to_vec4(1.0) for v in triangle.vertices]
        if any(c.w <= _W_EPSILON for c in clip):
            return None
        # Frustum rejection: all vertices outside the same clip plane.
        for axis in ("x", "y", "z"):
            if all(getattr(c, axis) < -c.w for c in clip):
                return None
            if all(getattr(c, axis) > c.w for c in clip):
                return None

        window = [
            self._viewport @ c.perspective_divide().to_vec4(1.0)
            for c in clip
        ]
        xy = tuple(Vec2(w.x, w.y) for w in window)
        z = tuple(min(max(w.z, 0.0), 1.0) for w in window)
        attributes = tuple(v.attributes for v in triangle.vertices)

        signature_bytes = self._signature_bytes(xy, z, attributes, state)
        return ScreenTriangle(
            xy=xy,  # type: ignore[arg-type]
            z=z,  # type: ignore[arg-type]
            attributes=attributes,  # type: ignore[arg-type]
            command_id=command_id,
            primitive_id=primitive_id,
            state=state,
            signature_bytes=signature_bytes,
        )

    @staticmethod
    def _signature_bytes(xy, z, attributes, state) -> bytes:
        """Post-transform encoding fed to the RE CRC.

        The signature must change whenever anything that can affect the
        tile's colors changes: window-space positions (so moving objects
        are caught even when their object-space mesh is static), vertex
        attributes, and the render state / shader identity.  Positions
        are packed at full f64 precision: the rasterizer interpolates in
        f64, so motion below f32 epsilon still changes blended colors,
        and an f32-quantized signature would wrongly match across such a
        frame pair and skip a tile whose true colors differ.
        """
        parts = [state.pack()]
        for position, depth, attrs in zip(xy, z, attributes):
            parts.append(struct.pack("<3d", position.x, position.y, depth))
            parts.append(attrs.pack())
        return b"".join(parts)

    @staticmethod
    def _should_cull(screen: ScreenTriangle, state) -> bool:
        """Back-face and degeneracy culling in Primitive Assembly.

        Window coordinates are y-down, so a front-facing (counter-
        clockwise in NDC) triangle has *negative* signed area here.
        Back-face culling applies only when the command enables it;
        zero-area triangles are always dropped.
        """
        area = screen.signed_area()
        if area == 0.0:
            return True
        if state.cull_backface and area > 0.0:
            return True
        return False

    def _prediction_depth(self, triangle: ScreenTriangle) -> float:
        """The primitive depth compared against ``Z_far`` (Section III-A).

        The paper uses the closest vertex (``Z_near``), the conservative
        choice; the ``prediction_point`` feature selects the centroid or
        farthest vertex for the conservatism ablation.
        """
        point = self.features.prediction_point
        if point == "near":
            return triangle.z_near
        if point == "centroid":
            return triangle.z_centroid
        return triangle.z_far

    # -- Polygon List Builder (binning + EVR hooks) -------------------------

    def _bin_primitive(
        self, triangle: ScreenTriangle, command: DrawCommand, stats: FrameStats
    ) -> None:
        """Sort one assembled primitive into all tiles it overlaps."""
        config = self.config
        features = self.features
        state = command.state

        offset = self.parameter_buffer.store_primitive(triangle)
        attribute_bytes = self.parameter_buffer.attribute_bytes_per_primitive
        self.memory.parameter_buffer_write(offset, attribute_bytes)
        stats.parameter_buffer_bytes += attribute_bytes

        crc = (
            RenderingElimination.primitive_crc(triangle)
            if self.re is not None
            else 0
        )
        # DSR tracks tile stability with a *coarse* signature so slow
        # sub-pixel motion still reads as stable (repro.techniques.dsr).
        dsr_crc = dsr_signature(triangle) if self.dsr is not None else 0

        prepass = features.z_prepass and triangle.writes_z
        if prepass:
            # The depth-only pass stores its own (position-only) records.
            prepass_offset = self.parameter_buffer.store_primitive(triangle)
            self.memory.parameter_buffer_write(prepass_offset, 48)
            stats.parameter_buffer_bytes += 48

        tiles = triangle.overlapped_tiles(
            config.tile_width, config.tile_height, config.tiles_x, config.tiles_y
        )
        for tile_x, tile_y in tiles:
            tile = tile_y * config.tiles_x + tile_x
            stats.primitive_tile_pairs += 1
            if prepass:
                stats.primitive_tile_pairs += 1
                stats.display_list_writes += 1

            layer = 0
            if features.uses_layers:
                assert self.lgt is not None
                layer = self.lgt.assign_layer(
                    tile, triangle.command_id, triangle.writes_z
                )
                stats.lgt_accesses += 1
                stats.layer_id_bytes += LAYER_ID_BYTES
                stats.parameter_buffer_bytes += LAYER_ID_BYTES

            predicted_occluded = False
            if features.evr_hardware:
                assert self.predictor is not None
                predicted_occluded = self.predictor.predict(
                    tile, triangle.writes_z,
                    self._prediction_depth(triangle), layer,
                    bbox=triangle.bounding_box(),
                )
                stats.fvp_lookups += 1
                stats.predictions_made += 1
                if predicted_occluded:
                    stats.predicted_occluded += 1

            entry = DisplayListEntry(
                primitive=triangle,
                offset=offset,
                layer=layer,
                predicted_occluded=predicted_occluded,
                pointer_offset=_POINTER_REGION_OFFSET + self._pointer_cursor,
            )
            display_list = self.parameter_buffer.display_list(tile)
            place_in_display_list(
                display_list,
                entry,
                writes_z=triangle.writes_z,
                predicted_occluded=predicted_occluded,
                reorder_enabled=features.evr_reorder,
            )
            pointer_bytes = POINTER_BYTES + (
                LAYER_ID_BYTES if features.uses_layers else 0
            )
            self.memory.parameter_buffer_write(
                _POINTER_REGION_OFFSET + self._pointer_cursor, pointer_bytes
            )
            self._pointer_cursor += pointer_bytes
            stats.display_list_writes += 1

            if self.re is not None:
                updated = self.re.on_primitive_binned(tile, crc, predicted_occluded)
                if updated:
                    stats.signature_updates += 1
                else:
                    stats.signature_skips += 1

            if self.dsr is not None:
                self.dsr.on_primitive_binned(tile, dsr_crc)
                stats.signature_updates += 1
