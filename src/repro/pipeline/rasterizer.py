"""Tile-scoped triangle rasterization — compatibility re-export.

The scalar rasterizer moved to :mod:`repro.kernels.reference` when the
kernel backend seam was introduced (it *is* the reference backend's
coverage/interpolation kernel); this module remains so historical
imports keep working.  New code should go through
:func:`repro.kernels.resolve_backend` instead of calling the scalar
functions directly.
"""

from __future__ import annotations

from ..kernels.reference import (
    FragmentBatch,
    _edge,
    _is_top_left,
    rasterize_in_tile,
)

__all__ = ["FragmentBatch", "rasterize_in_tile", "_edge", "_is_top_left"]
