"""Tile-scoped triangle rasterization with edge functions.

The rasterizer discretizes one screen-space triangle over one tile's pixel
grid: coverage comes from three edge functions evaluated at pixel centers
(with the top-left fill rule, so triangles sharing an edge never double-
cover a pixel), and depth/color/uv are interpolated barycentrically.

Interpolation is affine (screen-space barycentric) rather than
perspective-correct; depth interpolation in screen space is exact, and the
cost model only needs attribute *counts*, so this simplification does not
affect any reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geom import ScreenTriangle


@dataclass
class FragmentBatch:
    """All fragments a triangle produced inside one tile.

    Arrays are tile-shaped ``(tile_height, tile_width)``; ``mask`` selects
    the covered pixels and the other arrays are only meaningful there.
    """

    mask: np.ndarray        # bool     — coverage
    depth: np.ndarray       # float64  — interpolated window-space depth
    rgba: np.ndarray        # float64  — (h, w, 4) interpolated color
    u: np.ndarray           # float64  — texture coordinate
    v: np.ndarray           # float64  — texture coordinate

    @property
    def fragment_count(self) -> int:
        return int(np.count_nonzero(self.mask))


def _edge(ax: float, ay: float, bx: float, by: float,
          px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Edge function cross(b - a, p - a): positive on the interior side
    for a triangle with positive signed area and edges taken in order."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _is_top_left(ax: float, ay: float, bx: float, by: float) -> bool:
    """Top-left fill rule for edge a->b of a clockwise (y-down) triangle."""
    return (ay == by and bx < ax) or (by < ay)


def rasterize_in_tile(
    triangle: ScreenTriangle,
    tile_x0: int,
    tile_y0: int,
    tile_width: int,
    tile_height: int,
) -> Optional[FragmentBatch]:
    """Rasterize ``triangle`` restricted to one tile.

    Args:
        triangle: screen-space triangle.
        tile_x0: left pixel column of the tile.
        tile_y0: top pixel row of the tile.
        tile_width: tile width in pixels.
        tile_height: tile height in pixels.

    Returns:
        A :class:`FragmentBatch`, or None when no pixel center is covered
        (bounding-box binning is conservative, so this is common).
    """
    (v0, v1, v2) = triangle.xy
    area = triangle.signed_area()
    if area == 0.0:
        return None
    if area < 0.0:
        # Normalize winding so all edge functions are positive inside.
        v1, v2 = v2, v1
        area = -area

    px = tile_x0 + np.arange(tile_width, dtype=np.float64) + 0.5
    py = tile_y0 + np.arange(tile_height, dtype=np.float64) + 0.5
    grid_x, grid_y = np.meshgrid(px, py)

    w0 = _edge(v1.x, v1.y, v2.x, v2.y, grid_x, grid_y)
    w1 = _edge(v2.x, v2.y, v0.x, v0.y, grid_x, grid_y)
    w2 = _edge(v0.x, v0.y, v1.x, v1.y, grid_x, grid_y)

    mask = np.ones((tile_height, tile_width), dtype=bool)
    for weights, (ax, ay, bx, by) in (
        (w0, (v1.x, v1.y, v2.x, v2.y)),
        (w1, (v2.x, v2.y, v0.x, v0.y)),
        (w2, (v0.x, v0.y, v1.x, v1.y)),
    ):
        if _is_top_left(ax, ay, bx, by):
            mask &= weights >= 0.0
        else:
            mask &= weights > 0.0

    if not mask.any():
        return None

    inv_area = 1.0 / area
    b0 = w0 * inv_area
    b1 = w1 * inv_area
    b2 = w2 * inv_area

    # Attribute order must follow the (possibly swapped) vertex order.
    if triangle.signed_area() < 0.0:
        z0, z1, z2 = triangle.z[0], triangle.z[2], triangle.z[1]
        a0, a1, a2 = (
            triangle.attributes[0],
            triangle.attributes[2],
            triangle.attributes[1],
        )
    else:
        z0, z1, z2 = triangle.z
        a0, a1, a2 = triangle.attributes

    depth = b0 * z0 + b1 * z1 + b2 * z2

    rgba = np.empty((tile_height, tile_width, 4), dtype=np.float64)
    for channel, getter in enumerate(("x", "y", "z", "w")):
        rgba[:, :, channel] = (
            b0 * getattr(a0.color, getter)
            + b1 * getattr(a1.color, getter)
            + b2 * getattr(a2.color, getter)
        )

    u = b0 * a0.uv.x + b1 * a1.uv.x + b2 * a2.uv.x
    v = b0 * a0.uv.y + b1 * a1.uv.y + b2 * a2.uv.y

    return FragmentBatch(mask=mask, depth=depth, rgba=rgba, u=u, v=v)
