"""Feature flags selecting which techniques the simulated GPU runs.

The paper compares four configurations; ablations recombine the same
flags:

* ``BASELINE`` — plain TBR GPU with Early Depth Test.
* ``RE`` — baseline + Rendering Elimination.
* ``EVR`` — RE + both EVR optimizations (Algorithm 1 reordering and
  signature filtering of predicted-occluded primitives).
* ``ORACLE`` — perfect-visibility references for Figures 8/9: the
  Z-buffer is pre-filled with final depths and redundant tiles are
  detected pixel-exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class PipelineFeatures:
    """Independent switches for each mechanism.

    Attributes:
        early_z: run the Early Depth Test before fragment shading (all of
            the paper's configurations have it on; turning it off models
            a naive GPU and is used in tests/ablations).
        rendering_elimination: skip tiles whose signature matches the
            previous frame.
        evr_hardware: maintain the EVR structures (LGT, Layer Buffer,
            FVP Table).  Required by the two flags below.
        evr_reorder: Algorithm 1 two-list display-list reordering.
        evr_signature_filter: exclude predicted-occluded primitives from
            RE signatures (requires ``rendering_elimination``).
        oracle_z: pre-fill the Z-buffer with the tile's final depth
            values before rendering it (Figure 8's oracle).
        oracle_redundancy: measure, with pixel-exact frame-to-frame tile
            comparison, how many tiles an oracle could have skipped
            (Figure 9's oracle).  A measurement, not a perf optimization:
            every tile still renders, only the comparator runs on top.
        fvp_history: how many past frames' FVPs a primitive must be
            behind to be predicted occluded.  1 is the paper's design
            (previous frame only); larger values are more conservative —
            the DESIGN.md history-depth ablation.
        prediction_point: which depth of the primitive is compared with
            ``Z_far``: ``"near"`` (closest vertex — the paper's
            conservative choice), ``"centroid"`` (mean vertex depth) or
            ``"far"`` (farthest vertex — most aggressive).  Aggressive
            points predict more occlusion but mispredict visible
            primitives more often, costing signature poisons — the
            DESIGN.md conservatism ablation.
        subtile_fvp: keep four 8x8-quadrant FVPs per tile instead of one
            (the DESIGN.md granularity ablation; 4x FVP Table storage).
        z_prepass: render each tile's WOZ geometry twice — a depth-only
            pass first, then the shading pass against a fully-resolved
            Z-buffer (Section IV-A's software alternative to EVR).
            Unlike ``oracle_z`` the pre-pass is *charged*: rasterization,
            depth tests and depth writes cost cycles and energy, which
            is exactly the overhead the paper argues often offsets the
            benefit.
        hierarchical_z: cull whole primitives before rasterization when
            their nearest vertex is farther than the tile's current
            maximum depth (the top of Greene's Z-pyramid; Section VIII).
            Intra-frame and order-dependent, unlike EVR's cross-frame
            FVP; safe by construction because unwritten pixels hold the
            far clear depth.
        dsr: Dynamic Sampling Rate — shade tiles whose coarse signature
            has been stable across frames at a fractional rate (1x2 or
            2x2 blocks, anchor color replicated).  Approximate: trades
            bounded blur for shading work (``repro.techniques.dsr``).
        fhv: Fragment-History-Volume-style reconstruction — for
            predicted-occluded opaque primitives, write the previous
            frame's framebuffer colors instead of shading.  Requires
            ``evr_hardware`` (the FVP makes the occlusion prediction).
            Approximate: mispredictions show last frame's pixels.
        vrpipe_early_termination: VR-Pipe-style opacity-threshold kill —
            drop blended fragments whose contribution to the pixel
            cannot exceed ``vrpipe_threshold`` per channel.
        vrpipe_threshold: the per-channel contribution (0..1 color
            scale) below which a blended fragment is killed.
    """

    early_z: bool = True
    rendering_elimination: bool = False
    evr_hardware: bool = False
    evr_reorder: bool = False
    evr_signature_filter: bool = False
    oracle_z: bool = False
    oracle_redundancy: bool = False
    fvp_history: int = 1
    prediction_point: str = "near"
    subtile_fvp: bool = False
    z_prepass: bool = False
    hierarchical_z: bool = False
    dsr: bool = False
    fhv: bool = False
    vrpipe_early_termination: bool = False
    vrpipe_threshold: float = 1.0 / 255.0

    def __post_init__(self) -> None:
        if self.evr_reorder and not self.evr_hardware:
            raise ConfigError("evr_reorder requires evr_hardware")
        if self.evr_signature_filter and not self.evr_hardware:
            raise ConfigError("evr_signature_filter requires evr_hardware")
        if self.evr_signature_filter and not self.rendering_elimination:
            raise ConfigError(
                "evr_signature_filter requires rendering_elimination"
            )
        if self.fvp_history < 1:
            raise ConfigError("fvp_history must be >= 1")
        if self.subtile_fvp and not self.evr_hardware:
            raise ConfigError("subtile_fvp requires evr_hardware")
        if self.subtile_fvp and self.fvp_history != 1:
            raise ConfigError("subtile_fvp does not support fvp_history > 1")
        if self.prediction_point not in ("near", "centroid", "far"):
            raise ConfigError(
                f"unknown prediction_point {self.prediction_point!r}"
            )
        if self.z_prepass and self.oracle_z:
            raise ConfigError("z_prepass and oracle_z are exclusive")
        if self.fhv and not self.evr_hardware:
            raise ConfigError("fhv requires evr_hardware")
        if self.vrpipe_threshold < 0.0:
            raise ConfigError("vrpipe_threshold must be >= 0")

    @property
    def uses_layers(self) -> bool:
        return self.evr_hardware


class PipelineMode(enum.Enum):
    """Compatibility shim for the paper's named configurations.

    The mode axis now lives in :mod:`repro.techniques` — an open
    registry where the paper modes are simply the first five entries.
    This enum survives for callers written against the original closed
    axis; it resolves through the registry, so the feature constructions
    are defined exactly once (``repro/techniques/catalog.py``).
    """

    BASELINE = "baseline"
    RE = "re"
    EVR = "evr"
    EVR_REORDER_ONLY = "evr-reorder-only"
    ORACLE = "oracle"

    def features(self) -> PipelineFeatures:
        """The feature-flag combination this mode stands for."""
        from ..techniques import get_technique

        return get_technique(self.value).features()
