"""Sub-tile FVP ablation: 2x2 quadrant-granular visibility prediction.

The paper stores one FVP per 16x16 tile, acknowledging that the "coarse
granularity caused by comparing to a single Z_far value ... reduces the
detection rate".  This module implements the natural refinement the
DESIGN.md ablation list calls out: each tile keeps four FVPs, one per
8x8 quadrant, and a primitive is predicted occluded only if it is
occluded in *every* quadrant its bounding box overlaps.

The refinement helps when a tile mixes near and far content: the single
Z_far is dragged to the far side by one quadrant, blinding the whole
tile, while quadrant FVPs keep the near quadrants predictive.  Hardware
cost: a 4x larger FVP Table (16 bytes/tile instead of 4) and four
min/max reductions per tile instead of one.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..hw.buffers import LayerBuffer, ZBuffer
from ..hw.fvp_table import FVPEntry, FVPType
from .evr import PredictionStats, predict_occluded

_QUADRANTS = ((0, 0), (1, 0), (0, 1), (1, 1))  # (qx, qy)


def compute_quadrant_fvps(
    layer_buffer: LayerBuffer, z_buffer: ZBuffer
) -> Tuple[FVPEntry, FVPEntry, FVPEntry, FVPEntry]:
    """Compute one FVP per 8x8 quadrant of the tile.

    The FVP-type test reuses the tile-global ZR register (the hardware
    has a single ZR): a quadrant whose ``L_far`` equals ZR is treated as
    WOZ-terminated, like the full-tile rule of Section V-B.
    """
    height, width = layer_buffer.layers.shape
    half_h, half_w = height // 2, width // 2
    entries: List[FVPEntry] = []
    for qx, qy in _QUADRANTS:
        rows = slice(qy * half_h, (qy + 1) * half_h or None)
        cols = slice(qx * half_w, (qx + 1) * half_w or None)
        layers = layer_buffer.layers[rows, cols]
        l_far = int(layers.min())
        if l_far == layer_buffer.zr_register:
            z_far = float(z_buffer.depth[rows, cols].max())
            entries.append(FVPEntry(FVPType.WOZ, z_far))
        else:
            entries.append(FVPEntry(FVPType.NWOZ, l_far))
    return tuple(entries)  # type: ignore[return-value]


class SubTileVisibilityPredictor:
    """Drop-in alternative to :class:`repro.core.evr.VisibilityPredictor`
    with quadrant-granular FVPs.

    The Polygon List Builder must supply the primitive's screen-space
    bounding box so the predictor can restrict the test to the quadrants
    the primitive can actually touch.
    """

    def __init__(self, num_tiles: int, tile_width: int, tile_height: int,
                 tiles_x: int):
        self.num_tiles = num_tiles
        self.tile_width = tile_width
        self.tile_height = tile_height
        self.tiles_x = tiles_x
        self._entries: List[Optional[Tuple[FVPEntry, ...]]] = [None] * num_tiles
        self.stats = PredictionStats()
        self.lookups = 0
        self.updates = 0

    def _overlapped_quadrants(
        self, tile: int, bbox: Tuple[float, float, float, float]
    ) -> List[int]:
        """Indices into the quadrant tuple that ``bbox`` can touch."""
        tile_x = (tile % self.tiles_x) * self.tile_width
        tile_y = (tile // self.tiles_x) * self.tile_height
        half_w = self.tile_width / 2.0
        half_h = self.tile_height / 2.0
        min_x, min_y, max_x, max_y = bbox
        overlapped = []
        for index, (qx, qy) in enumerate(_QUADRANTS):
            left = tile_x + qx * half_w
            top = tile_y + qy * half_h
            if (max_x > left and min_x < left + half_w
                    and max_y > top and min_y < top + half_h):
                overlapped.append(index)
        return overlapped

    def predict(
        self,
        tile: int,
        writes_z: bool,
        z_near: float,
        layer: int,
        bbox: Optional[Tuple[float, float, float, float]] = None,
    ) -> bool:
        """Occluded iff occluded in every overlapped quadrant."""
        self.lookups += 1
        entries = self._entries[tile]
        self.stats.predictions += 1
        if entries is None:
            return False
        if bbox is None:
            quadrants = range(4)
        else:
            quadrants = self._overlapped_quadrants(tile, bbox)
            if not quadrants:
                # Conservative: binning said the primitive overlaps the
                # tile; if the quadrant test disagrees, predict visible.
                return False
        occluded = all(
            predict_occluded(entries[q], writes_z, z_near, layer)
            for q in quadrants
        )
        if occluded:
            self.stats.predicted_occluded += 1
        return occluded

    def record_tile(self, tile: int, layer_buffer: LayerBuffer,
                    z_buffer: ZBuffer) -> Tuple[FVPEntry, ...]:
        """Compute and store all four quadrant FVPs."""
        entries = compute_quadrant_fvps(layer_buffer, z_buffer)
        self._entries[tile] = entries
        self.updates += 1
        return entries

    @property
    def occluded_rate(self) -> float:
        if not self.stats.predictions:
            return 0.0
        return self.stats.predicted_occluded / self.stats.predictions
