"""Rendering Elimination, baseline and EVR-aided (Sections II and IV-B).

Baseline RE: every primitive sorted into a tile folds its CRC32 into the
tile's running signature; when the Raster Pipeline schedules the tile, the
running signature is compared with the previous frame's — a match means
the tile's inputs are unchanged, so its rendering is skipped and last
frame's colors are reused.

EVR-aided RE: primitives *predicted occluded* in a tile are left out of
that tile's signature.  Tiles whose only frame-to-frame change is hidden
geometry then still match and get skipped.  Table I's case analysis (and
:mod:`tests.test_visibility_casuistry`) shows this never skips a tile
whose visible colors changed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.signature_buffer import SignatureBuffer, primitive_signature
from ..geom import ScreenTriangle


@dataclass
class REStats:
    """Counters for Figure 9-style reporting."""

    signature_updates: int = 0
    signature_skips: int = 0
    tiles_checked: int = 0
    tiles_matched: int = 0
    tiles_poisoned: int = 0


class RenderingElimination:
    """The RE controller owned by the GPU when RE is enabled."""

    def __init__(self, num_tiles: int, filter_occluded: bool = False):
        """
        Args:
            num_tiles: tiles on screen (Signature Buffer entries).
            filter_occluded: enable the EVR improvement — exclude
                predicted-occluded primitives from tile signatures.
        """
        self.signature_buffer = SignatureBuffer(num_tiles)
        self.filter_occluded = filter_occluded
        self.stats = REStats()

    @staticmethod
    def primitive_crc(primitive: ScreenTriangle) -> int:
        """CRC32 of the primitive's attributes (Figure 2, step 2)."""
        return primitive_signature(primitive)

    def on_primitive_binned(
        self, tile: int, primitive_crc: int, predicted_occluded: bool
    ) -> bool:
        """Fold a sorted primitive into the tile signature.

        Returns True when the signature was updated, False when the EVR
        filter skipped the update (saving the Signature Buffer
        read-modify-write and its Geometry Pipeline stall).
        """
        if self.filter_occluded and predicted_occluded:
            self.stats.signature_skips += 1
            return False
        self.signature_buffer.update(tile, primitive_crc)
        self.stats.signature_updates += 1
        return True

    def poison_tile(self, tile: int) -> None:
        """Mark the tile's current signature as not describing its visible
        content (a predicted-occluded primitive was actually visible).

        The next frame's comparison against this signature will fail, so
        the tile re-renders — the conservative repair that keeps the
        EVR filter pixel-exact under mispredictions (see DESIGN.md).
        """
        self.signature_buffer.poison(tile)
        self.stats.tiles_poisoned += 1

    def should_skip_tile(self, tile: int) -> bool:
        """Signature comparison at tile-schedule time (Figure 2, step 3)."""
        self.stats.tiles_checked += 1
        if self.signature_buffer.matches_previous(tile):
            self.stats.tiles_matched += 1
            return True
        return False

    def end_frame(self) -> None:
        self.signature_buffer.rotate_frame()

    @property
    def detection_rate(self) -> float:
        """Fraction of checked tiles detected as redundant."""
        if not self.stats.tiles_checked:
            return 0.0
        return self.stats.tiles_matched / self.stats.tiles_checked
