"""Algorithm 1: FVP-based display-list reordering (Section IV-A).

Each tile's Display List is split in two.  WOZ primitives predicted
visible go to the first list; WOZ primitives predicted occluded go to the
second list, which the raster pipeline drains last — after the (predicted)
visible geometry has filled the Z-buffer, so the Early Depth Test rejects
their fragments.

NWOZ primitives must keep their submission order relative to *everything*
(painter's algorithm / blending are order dependent), so when an NWOZ
primitive arrives the second list is first folded back into the first.

Only WOZ primitives are ever reordered among themselves, and WOZ
visibility is resolved by the Z-buffer regardless of order, so the
transformation can never change the rendered image.
"""

from __future__ import annotations

from ..hw.parameter_buffer import DisplayList, DisplayListEntry


def place_in_display_list(
    display_list: DisplayList,
    entry: DisplayListEntry,
    writes_z: bool,
    predicted_occluded: bool,
    reorder_enabled: bool = True,
) -> None:
    """Append ``entry`` to the tile's display list per Algorithm 1.

    With ``reorder_enabled=False`` this degenerates to the baseline
    single-list behaviour (everything appended to the first list in
    submission order).
    """
    if not reorder_enabled:
        display_list.append_first(entry)
        return
    if writes_z:
        if predicted_occluded:
            display_list.append_second(entry)
        else:
            display_list.append_first(entry)
        return
    # NWOZ primitive: restore global order before appending.
    if display_list.second:
        display_list.promote_second()
    display_list.append_first(entry)
