"""The paper's contribution: Early Visibility Resolution and its two uses.

* :mod:`repro.core.evr` — FVP computation and the visibility predictor.
* :mod:`repro.core.reorder` — Algorithm 1, the two-list display-list
  reordering that boosts the Early Depth Test.
* :mod:`repro.core.rendering_elimination` — baseline RE and the EVR-aided
  variant that excludes predicted-occluded primitives from signatures.
* :mod:`repro.core.oracle` — the two oracle references used by Figures 8
  and 9 (perfect Z-prepass, perfect redundant-tile detection).
"""

from .evr import VisibilityPredictor, compute_fvp, predict_occluded
from .reorder import place_in_display_list
from .rendering_elimination import RenderingElimination
from .oracle import OracleTileComparator

__all__ = [
    "predict_occluded",
    "compute_fvp",
    "VisibilityPredictor",
    "place_in_display_list",
    "RenderingElimination",
    "OracleTileComparator",
]
