"""Oracle references used by the paper's Figures 8 and 9.

* **Oracle overshading** (Figure 8): a GPU whose Z-buffer is magically
  pre-initialized with each tile's *final* depth values before the tile
  renders, so the Early Depth Test only lets truly-visible (or
  translucent) fragments through.  Implemented in the raster pipeline as
  a silent depth-only pre-pass over the tile's WOZ geometry.

* **Oracle redundant-tile detection** (Figure 9): perfect knowledge of
  which tiles produce byte-identical colors to the previous frame.
  Implemented here by comparing rendered tile images across frames.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class OracleTileComparator:
    """Pixel-exact frame-to-frame tile redundancy detection."""

    def __init__(self) -> None:
        self._previous: Dict[int, np.ndarray] = {}
        self._current: Dict[int, np.ndarray] = {}
        self.tiles_checked = 0
        self.tiles_equal = 0

    def record_tile(self, tile: int, colors: np.ndarray) -> bool:
        """Record this frame's colors for ``tile``; returns True when they
        are identical to the previous frame's (an oracle would have
        skipped the tile).

        The first frame records without matching (no reference yet).
        """
        previous = self._previous.get(tile)
        self._current[tile] = colors.copy()
        if previous is None:
            return False
        self.tiles_checked += 1
        equal = previous.shape == colors.shape and bool(
            np.array_equal(previous, colors)
        )
        if equal:
            self.tiles_equal += 1
        return equal

    def previous_colors(self, tile: int) -> Optional[np.ndarray]:
        """Last frame's colors for ``tile`` (used when RE skips a tile)."""
        return self._previous.get(tile)

    def end_frame(self) -> None:
        """Rotate: current frame becomes the reference for the next."""
        # Tiles not re-recorded this frame (RE-skipped) keep their old
        # colors: carry them over explicitly.
        for tile, colors in self._previous.items():
            self._current.setdefault(tile, colors)
        self._previous = self._current
        self._current = {}

    @property
    def equal_rate(self) -> float:
        """Fraction of tiles (after frame 0) equal to the previous frame."""
        if not self.tiles_checked:
            return 0.0
        return self.tiles_equal / self.tiles_checked
