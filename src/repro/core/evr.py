"""Early Visibility Resolution: FVP computation and prediction rules.

Section III of the paper.  Per tile and per frame, the *farthest visible
point* (FVP) is either:

* ``Z_far`` — the maximum depth left in the Z-buffer after the tile
  finished rendering, when the farthest visible pixel belongs to a WOZ
  primitive; or
* ``L_far`` — the minimum layer identifier left in the Layer Buffer, when
  it belongs to a NWOZ primitive.

During the next frame's binning, a primitive is *predicted occluded* in a
tile when (Section III-C):

* the stored FVP is NWOZ and the primitive's layer in this tile is lower
  (older) than ``L_far``; or
* the stored FVP is WOZ, the primitive is WOZ, and the primitive's nearest
  vertex depth ``Z_near`` is farther than ``Z_far``.

Both rules are conservative approximations, and mispredictions are safe by
construction: reordering never changes the image and a wrongly-"occluded"
primitive only costs culling opportunity (Section IV-A) or is protected by
the signature argument of Table I (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hw.buffers import LayerBuffer, ZBuffer
from ..hw.fvp_table import FVPEntry, FVPTable, FVPType


def compute_fvp(layer_buffer: LayerBuffer, z_buffer: ZBuffer) -> FVPEntry:
    """End-of-tile FVP computation (Sections III-C and V-B).

    The FVP-type is resolved by comparing the ZR register (layer of the
    last visible WOZ fragment) with ``L_far``: equality means the farthest
    visible layer belongs to WOZ geometry, so the useful depth is
    ``Z_far``; otherwise it is the layer identifier ``L_far``.
    """
    l_far = layer_buffer.l_far
    if layer_buffer.fvp_is_woz:
        return FVPEntry(FVPType.WOZ, z_buffer.z_far)
    return FVPEntry(FVPType.NWOZ, l_far)


def predict_occluded(
    entry: Optional[FVPEntry],
    writes_z: bool,
    z_near: float,
    layer: int,
) -> bool:
    """Apply the Section III-C prediction rules for one (primitive, tile).

    Args:
        entry: the tile's FVP from the previous frame (None before the
            first frame completes -> predicted visible).
        writes_z: whether the primitive is WOZ.
        z_near: depth of the primitive's closest vertex.
        layer: layer identifier assigned to the primitive in this tile.
    """
    if entry is None:
        return False
    if entry.fvp_type is FVPType.NWOZ:
        return layer < int(entry.value)
    return writes_z and z_near > float(entry.value)


@dataclass
class PredictionStats:
    """Counters for prediction quality reporting."""

    predictions: int = 0
    predicted_occluded: int = 0


class VisibilityPredictor:
    """Stateful wrapper: FVP Table + prediction counters.

    One instance lives inside the GPU when EVR is enabled; the Polygon
    List Builder calls :meth:`predict` per (primitive, tile) and the
    raster pipeline calls :meth:`record_tile` when a tile finishes.

    Args:
        num_tiles: tiles on screen.
        history: FVP history depth.  1 (the paper's design) predicts
            from the previous frame's FVP alone; ``history=k`` requires a
            primitive to be behind the FVPs of the last *k* frames — a
            more conservative predictor, for the DESIGN.md ablation.
    """

    def __init__(self, num_tiles: int, history: int = 1):
        if history < 1:
            raise ValueError("history must be >= 1")
        self.table = FVPTable(num_tiles)
        self.history = history
        self._past_entries: list = [[] for _ in range(num_tiles)]
        self.stats = PredictionStats()

    def predict(self, tile: int, writes_z: bool, z_near: float, layer: int,
                bbox: Optional[tuple] = None) -> bool:
        """Predict whether the primitive is occluded in ``tile``.

        ``bbox`` is accepted for interface compatibility with the
        sub-tile predictor and ignored: the whole tile shares one FVP.
        """
        entry = self.table.lookup(tile)
        occluded = predict_occluded(entry, writes_z, z_near, layer)
        if occluded and self.history > 1:
            occluded = all(
                predict_occluded(past, writes_z, z_near, layer)
                for past in self._past_entries[tile]
            )
        self.stats.predictions += 1
        if occluded:
            self.stats.predicted_occluded += 1
        return occluded

    def record_tile(self, tile: int, layer_buffer: LayerBuffer,
                    z_buffer: ZBuffer) -> FVPEntry:
        """Compute and store the tile's FVP for next frame's predictions."""
        entry = compute_fvp(layer_buffer, z_buffer)
        if self.history > 1:
            past = self._past_entries[tile]
            past.append(entry)
            if len(past) > self.history:
                past.pop(0)
        self.table.update(tile, entry)
        return entry

    @property
    def occluded_rate(self) -> float:
        if not self.stats.predictions:
            return 0.0
        return self.stats.predicted_occluded / self.stats.predictions
