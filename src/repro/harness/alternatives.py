"""Comparison of EVR against the alternative culling mechanisms the
paper discusses: software Z-prepass (Section IV-A) and Hierarchical-Z
primitive rejection (Section VIII).

The interesting quantity is not just shaded fragments — Z-prepass
matches the oracle there by construction — but *total cycles*: the
pre-pass re-rasterizes and re-tests everything, which is the overhead
the paper argues "often offsets its potential benefits", while EVR gets
most of the fragment savings for the price of a table lookup.
Hierarchical-Z is order-dependent (it can only reject primitives behind
already-drawn ones), so it shines exactly where EVR's reordering has
already put the visible geometry first — the two compose.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..pipeline import GPU, PipelineFeatures, PipelineMode
from ..scenes import benchmark_stream
from .experiments import ExperimentResult

_CONFIGURATIONS: Tuple[Tuple[str, object], ...] = (
    ("baseline", PipelineMode.BASELINE),
    ("hiz", PipelineFeatures(hierarchical_z=True)),
    ("z-prepass", PipelineFeatures(z_prepass=True)),
    ("evr-reorder", PipelineMode.EVR_REORDER_ONLY),
    ("evr+hiz", PipelineFeatures(evr_hardware=True, evr_reorder=True,
                                 hierarchical_z=True)),
    ("oracle", PipelineMode.ORACLE),
)


def culling_alternatives(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = ("tib", "ata"),
) -> ExperimentResult:
    """Shaded work and total cycles for each culling mechanism."""
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    for alias in benchmarks:
        stream = benchmark_stream(alias, config)
        baseline_cycles: Optional[float] = None
        for label, features in _CONFIGURATIONS:
            result = GPU(config, features).render_stream(stream)
            cycles = result.total_cycles().total
            if baseline_cycles is None:
                baseline_cycles = cycles
            stats = result.total_stats()
            rows.append([
                alias,
                label,
                result.shaded_fragments_per_pixel(),
                cycles / baseline_cycles,
                stats.hiz_culled,
                stats.prepass_fragments,
            ])
    return ExperimentResult(
        "Analysis",
        "Culling alternatives: fragments saved vs cycles paid",
        ["benchmark", "mechanism", "frags/px", "time (norm)",
         "hiz culled", "prepass fragments"],
        rows,
    )
