"""Comparison of EVR against rival culling/shading-reduction techniques.

Two tables come out of this module, both driven by the technique
registry (:mod:`repro.techniques`) through a :class:`SuiteRunner` — so
every cell is memoized, disk-cacheable and ledgered exactly like the
paper-figure runs:

* :func:`culling_alternatives` — the *exact* mechanisms the paper
  discusses: software Z-prepass (Section IV-A) and Hierarchical-Z
  primitive rejection (Section VIII).  The interesting quantity is not
  just shaded fragments — Z-prepass matches the oracle there by
  construction — but *total cycles*: the pre-pass re-rasterizes and
  re-tests everything, which is the overhead the paper argues "often
  offsets its potential benefits", while EVR gets most of the fragment
  savings for the price of a table lookup.  Hierarchical-Z is
  order-dependent (it can only reject primitives behind already-drawn
  ones), so it shines exactly where EVR's reordering has already put
  the visible geometry first — the two compose.

* :func:`rival_techniques` — the *approximate* successors from the
  lineage (DSR, FHV, VR-Pipe-style early termination) against EVR.
  These trade bounded image error for shading work, so the table
  carries each technique's distilled extra metric (fragments reused,
  reconstructed or killed) next to the shared frags/px and
  normalized-cycles columns.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence, Tuple

from ..config import GPUConfig
from .experiments import ExperimentResult
from .runner import SuiteRunner

#: Registered technique names for the paper's culling discussion, in
#: table order.  The first entry is the normalization reference.
_MECHANISMS: Tuple[str, ...] = (
    "baseline", "hiz", "z-prepass", "evr-reorder-only", "evr-hiz", "oracle",
)

#: Registered technique names for the rival-technique comparison.
_RIVALS: Tuple[str, ...] = ("baseline", "evr", "dsr", "fhv", "vrpipe-et")


def _runner_for(runner: Optional[SuiteRunner],
                config: Optional[GPUConfig]):
    """An owned (context-managed) runner when none was passed in."""
    if runner is not None:
        return nullcontext(runner)
    return SuiteRunner(config or GPUConfig.default())


def culling_alternatives(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = ("tib", "ata"),
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """Shaded work and total cycles for each culling mechanism."""
    with _runner_for(runner, config) as suite:
        results = suite.run_many(benchmarks, _MECHANISMS)
    rows: List[List[object]] = []
    for alias in benchmarks:
        baseline_cycles = results[(alias, _MECHANISMS[0])].total_cycles
        for name in _MECHANISMS:
            metrics = results[(alias, name)]
            rows.append([
                alias,
                name,
                metrics.shaded_fragments_per_pixel,
                metrics.total_cycles / baseline_cycles,
                int(metrics.extra.get("hiz_culled", 0)),
                int(metrics.extra.get("prepass_fragments", 0)),
            ])
    return ExperimentResult(
        "Analysis",
        "Culling alternatives: fragments saved vs cycles paid",
        ["benchmark", "mechanism", "frags/px", "time (norm)",
         "hiz culled", "prepass fragments"],
        rows,
    )


def rival_techniques(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = ("tib", "ata"),
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """EVR vs the approximate rivals: shading saved vs cycles paid.

    The ``technique metric`` column is each technique's distilled extra
    counter (fragments DSR reused, FHV reconstructed, VR-Pipe killed);
    exact techniques show a dash.
    """
    with _runner_for(runner, config) as suite:
        results = suite.run_many(benchmarks, _RIVALS)
    rows: List[List[object]] = []
    for alias in benchmarks:
        baseline_cycles = results[(alias, _RIVALS[0])].total_cycles
        for name in _RIVALS:
            metrics = results[(alias, name)]
            extra = ", ".join(
                f"{key}={value:g}" for key, value in
                sorted(metrics.extra.items())
            ) or "-"
            rows.append([
                alias,
                name,
                metrics.shaded_fragments_per_pixel,
                metrics.total_cycles / baseline_cycles,
                extra,
            ])
    return ExperimentResult(
        "Analysis",
        "EVR vs rival techniques: shading saved vs cycles paid",
        ["benchmark", "technique", "frags/px", "time (norm)",
         "technique metric"],
        rows,
    )
