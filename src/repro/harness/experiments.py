"""One function per paper table/figure.

Each function runs (or reuses) the required simulations and returns an
:class:`ExperimentResult` whose rows mirror what the paper plots:

========  ==========================================================
Table II  GPU simulation parameters
Table III benchmark suite inventory
Figure 6  EVR energy normalized to the baseline GPU (+ overheads)
Figure 7  EVR execution time normalized to baseline (Geometry/Raster)
Figure 8  shaded fragments per pixel: Baseline / EVR / Oracle (3D)
Figure 9  % redundant tiles detected: RE / EVR / Oracle
Figure 10 EVR energy normalized to RE
Figure 11 RE and EVR execution time vs baseline (Geometry/Raster)
========  ==========================================================

The paper's numbers come from 60 frames of 20 commercial apps on a
cycle-accurate simulator; ours from synthetic scenes on an event-cost
model, so absolute values differ — the *shape* (who wins, roughly by how
much, where the exceptions are) is the reproduction target, recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GPUConfig
from ..techniques import BASELINE, EVR, EVR_REORDER_ONLY, ORACLE, RE
from ..scenes import BENCHMARKS, benchmark_names
from ..spec import RunSpec
from .runner import RunMetrics, SuiteRunner
from .tables import format_table


def _default_runner() -> SuiteRunner:
    """Figure functions default to the ``scaled`` preset spec — the same
    configuration (192x160, 16 frames) the test-suite and harness have
    always used, now named and hashable."""
    return SuiteRunner(spec=RunSpec.preset("scaled"))


@dataclass
class ExperimentResult:
    """Structured output of one table/figure regeneration."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self, precision: int = 3) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment}] {self.title}",
                            precision=precision)
        if self.summary:
            summary = "  ".join(
                f"{key}={value:.3f}" for key, value in self.summary.items()
            )
            text += f"\n{summary}"
        return text


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table2_parameters(config: Optional[GPUConfig] = None) -> ExperimentResult:
    """Table II: the simulated GPU's parameters."""
    config = config or GPUConfig.paper()
    rows: List[List[object]] = [
        [key, str(value)] for key, value in config.describe().items()
    ]
    for cache in config.caches:
        rows.append([
            f"cache:{cache.name}",
            f"{cache.size_bytes // 1024} KB, {cache.associativity}-way, "
            f"{cache.line_bytes} B lines, {cache.banks} bank(s), "
            f"{cache.latency_cycles} cycle(s)",
        ])
    for queue in config.queues:
        rows.append([
            f"queue:{queue.name}",
            f"{queue.entries} entries, {queue.entry_bytes} B/entry",
        ])
    rows.append(["lgt", f"{config.num_tiles} entries, {config.lgt_entry_bytes} B/entry"])
    rows.append(["fvp_table", f"{config.num_tiles} entries, {config.fvp_entry_bytes} B/entry"])
    rows.append(["layer_buffer", f"{config.layer_buffer_bytes} B"])
    return ExperimentResult(
        "Table II", "GPU simulation parameters", ["parameter", "value"], rows
    )


def table3_suite() -> ExperimentResult:
    """Table III: the benchmark suite."""
    rows = [
        [info.alias, info.title, info.genre, info.scene_type]
        for info in BENCHMARKS.values()
    ]
    return ExperimentResult(
        "Table III", "Benchmark suite",
        ["alias", "benchmark", "genre", "type"], rows,
    )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def figure6_energy(runner: Optional[SuiteRunner] = None,
                   benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 6: EVR energy normalized to the baseline GPU.

    Also reports the two overheads the paper singles out: extra Parameter
    Buffer writes for layer identifiers, and the added EVR/RE hardware.
    """
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names())
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [BASELINE, EVR])
    rows: List[List[object]] = []
    normalized: List[float] = []
    for name in names:
        base = runner.run(name, BASELINE)
        evr = runner.run(name, EVR)
        norm = evr.energy_joules / base.energy_joules
        param_overhead = (
            evr.energy_breakdown["parameter_buffer_overhead"]
            / base.energy_joules
        )
        hw_overhead = (
            evr.energy_breakdown["evr_structures"]
            + evr.energy_breakdown["re_structures"]
        ) / base.energy_joules
        normalized.append(norm)
        rows.append([name, norm, param_overhead, hw_overhead])
    average = _mean(normalized)
    rows.append(["average", average, "", ""])
    return ExperimentResult(
        "Figure 6",
        "Energy of EVR normalized to the Baseline GPU",
        ["benchmark", "evr/baseline", "param-buffer ovh", "extra-hw ovh"],
        rows,
        summary={"avg_energy_norm": average,
                 "avg_energy_savings": 1.0 - average},
    )


def figure7_time(runner: Optional[SuiteRunner] = None,
                 benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 7: EVR execution time normalized to baseline, split into
    Geometry and Raster pipeline cycles."""
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names())
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [BASELINE, EVR])
    rows: List[List[object]] = []
    normalized: List[float] = []
    for name in names:
        base = runner.run(name, BASELINE)
        evr = runner.run(name, EVR)
        norm = evr.total_cycles / base.total_cycles
        geometry_norm = evr.geometry_cycles / base.total_cycles
        raster_norm = evr.raster_cycles / base.total_cycles
        normalized.append(norm)
        rows.append([name, geometry_norm, raster_norm, norm])
    average = _mean(normalized)
    rows.append(["average", "", "", average])
    return ExperimentResult(
        "Figure 7",
        "Execution time of EVR normalized to the Baseline GPU",
        ["benchmark", "geometry", "raster", "total"],
        rows,
        summary={"avg_time_norm": average,
                 "avg_time_reduction": 1.0 - average},
    )


def figure8_overshading(runner: Optional[SuiteRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 8: shaded fragments per pixel for Baseline, EVR (reordering
    only, no tile skipping) and the perfect-Z Oracle, on 3D benchmarks.

    Overshading is a fragment-level phenomenon, so the EVR column uses
    the reorder-only mode: Rendering Elimination would remove whole tiles
    and conflate the two effects the paper separates.
    """
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names("3D"))
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [BASELINE, EVR_REORDER_ONLY, ORACLE])
    rows: List[List[object]] = []
    reductions: List[float] = []
    for name in names:
        base = runner.run(name, BASELINE)
        evr = runner.run(name, EVR_REORDER_ONLY)
        oracle = runner.run(name, ORACLE)
        rows.append([
            name,
            base.shaded_fragments_per_pixel,
            evr.shaded_fragments_per_pixel,
            oracle.shaded_fragments_per_pixel,
        ])
        if base.shaded_fragments_per_pixel:
            reductions.append(
                1.0 - evr.shaded_fragments_per_pixel / base.shaded_fragments_per_pixel
            )
    average = _mean(reductions)
    return ExperimentResult(
        "Figure 8",
        "Shaded fragments per pixel: Baseline vs EVR vs Oracle (3D apps)",
        ["benchmark", "baseline", "evr", "oracle"],
        rows,
        summary={"avg_overshading_reduction": average},
    )


def figure9_redundant_tiles(runner: Optional[SuiteRunner] = None,
                            benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 9: fraction of tiles detected redundant by RE, EVR-aided RE
    and the pixel-exact oracle."""
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names())
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [RE, EVR, ORACLE])
    rows: List[List[object]] = []
    re_rates: List[float] = []
    evr_rates: List[float] = []
    oracle_rates: List[float] = []
    for name in names:
        re_run = runner.run(name, RE)
        evr_run = runner.run(name, EVR)
        oracle_run = runner.run(name, ORACLE)
        re_rates.append(re_run.redundant_tile_rate)
        evr_rates.append(evr_run.redundant_tile_rate)
        oracle_rates.append(oracle_run.redundant_tile_rate)
        rows.append([
            name,
            re_run.redundant_tile_rate,
            evr_run.redundant_tile_rate,
            oracle_run.redundant_tile_rate,
        ])
    rows.append(["average", _mean(re_rates), _mean(evr_rates), _mean(oracle_rates)])
    return ExperimentResult(
        "Figure 9",
        "Redundant tiles detected: RE vs EVR vs Oracle",
        ["benchmark", "re", "evr", "oracle"],
        rows,
        summary={
            "avg_re": _mean(re_rates),
            "avg_evr": _mean(evr_rates),
            "avg_oracle": _mean(oracle_rates),
            "evr_minus_re": _mean(evr_rates) - _mean(re_rates),
        },
    )


def figure10_energy_vs_re(runner: Optional[SuiteRunner] = None,
                          benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 10: EVR energy normalized to the RE GPU."""
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names())
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [RE, EVR])
    rows: List[List[object]] = []
    normalized: List[float] = []
    for name in names:
        re_run = runner.run(name, RE)
        evr_run = runner.run(name, EVR)
        norm = evr_run.energy_joules / re_run.energy_joules
        normalized.append(norm)
        rows.append([name, norm])
    average = _mean(normalized)
    rows.append(["average", average])
    return ExperimentResult(
        "Figure 10",
        "Energy of EVR normalized to Rendering Elimination",
        ["benchmark", "evr/re"],
        rows,
        summary={"avg_energy_vs_re": average,
                 "avg_savings_vs_re": 1.0 - average},
    )


def figure11_time_vs_re(runner: Optional[SuiteRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Figure 11: RE and EVR execution time normalized to baseline,
    split into Geometry and Raster cycles."""
    runner = runner or _default_runner()
    names = list(benchmarks or benchmark_names())
    # One fan-out for every run this figure needs (parallel under --jobs).
    runner.prefetch(names, [BASELINE, RE, EVR])
    rows: List[List[object]] = []
    re_norms: List[float] = []
    evr_norms: List[float] = []
    for name in names:
        base = runner.run(name, BASELINE)
        re_run = runner.run(name, RE)
        evr_run = runner.run(name, EVR)
        re_norm = re_run.total_cycles / base.total_cycles
        evr_norm = evr_run.total_cycles / base.total_cycles
        re_norms.append(re_norm)
        evr_norms.append(evr_norm)
        rows.append([
            name,
            re_run.geometry_cycles / base.total_cycles,
            re_run.raster_cycles / base.total_cycles,
            re_norm,
            evr_run.geometry_cycles / base.total_cycles,
            evr_run.raster_cycles / base.total_cycles,
            evr_norm,
        ])
    rows.append(["average", "", "", _mean(re_norms), "", "", _mean(evr_norms)])
    return ExperimentResult(
        "Figure 11",
        "Execution time of RE and EVR normalized to the Baseline GPU",
        ["benchmark", "re-geom", "re-raster", "re-total",
         "evr-geom", "evr-raster", "evr-total"],
        rows,
        summary={"avg_re_norm": _mean(re_norms),
                 "avg_evr_norm": _mean(evr_norms)},
    )
