"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they vary one EVR design parameter
at a time and report how the trade-off moves.

* **Prediction point** (Section III-A): the paper compares the
  primitive's *closest* vertex against ``Z_far`` — conservative by
  construction.  Using the centroid or the farthest vertex predicts more
  occlusion but mispredicts visible primitives, which (with this
  reproduction's poisoning repair) costs re-rendered tiles instead of
  image errors.
* **FVP history depth**: predicting from the previous frame alone (the
  paper) versus requiring a primitive to be behind the FVPs of the last
  k frames — fewer mispredictions, fewer detections.
* **Draw order** (Section IV-A): how much submission order hurts the
  baseline's Early Depth Test, and how much of that Algorithm 1 recovers
  without any application-side sorting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import GPUConfig
from ..engine.scheduler import make_scheduler
from ..math3d import Vec3, Vec4
from ..pipeline import GPU, PipelineFeatures
from ..scenes import BoxSpec, LinearOscillation, Scene3D, benchmark_stream
from .experiments import ExperimentResult, _mean

_DEFAULT_3D = ("tib", "ata")


def _evr_features(**overrides: object) -> PipelineFeatures:
    base = dict(
        rendering_elimination=True,
        evr_hardware=True,
        evr_reorder=True,
        evr_signature_filter=True,
    )
    base.update(overrides)
    return PipelineFeatures(**base)  # type: ignore[arg-type]


def ablation_prediction_point(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = _DEFAULT_3D,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Conservatism of the predicted depth: near vs centroid vs far."""
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    scheduler = make_scheduler(jobs)
    try:
        for alias in benchmarks:
            stream = benchmark_stream(alias, config)
            for point in ("near", "centroid", "far"):
                gpu = GPU(config, _evr_features(prediction_point=point),
                          scheduler=scheduler)
                result = gpu.render_stream(stream)
                stats = result.total_stats()
                rows.append([
                    alias,
                    point,
                    stats.predicted_occluded / max(stats.predictions_made, 1),
                    result.redundant_tile_rate(),
                    stats.signature_poisons,
                    result.shaded_fragments_per_pixel(),
                ])
    finally:
        scheduler.close()
    return ExperimentResult(
        "Ablation A1",
        "Prediction point: conservative Z_near vs centroid vs Z_far",
        ["benchmark", "point", "pred-occluded", "tiles skipped",
         "poisons", "frags/px"],
        rows,
    )


def ablation_history(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = _DEFAULT_3D,
    depths: Sequence[int] = (1, 2, 3),
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """FVP history depth: previous frame only (paper) vs last k frames."""
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    scheduler = make_scheduler(jobs)
    try:
        for alias in benchmarks:
            stream = benchmark_stream(alias, config)
            for depth in depths:
                gpu = GPU(config, _evr_features(fvp_history=depth),
                          scheduler=scheduler)
                result = gpu.render_stream(stream)
                stats = result.total_stats()
                rows.append([
                    alias,
                    depth,
                    stats.predicted_occluded / max(stats.predictions_made, 1),
                    result.redundant_tile_rate(),
                    stats.signature_poisons,
                ])
    finally:
        scheduler.close()
    return ExperimentResult(
        "Ablation A2",
        "FVP history depth: 1 frame (paper) vs k-frame conservative merge",
        ["benchmark", "history", "pred-occluded", "tiles skipped", "poisons"],
        rows,
    )


def ablation_subtile(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = _DEFAULT_3D,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """FVP granularity: one FVP per tile (paper) vs 2x2 quadrant FVPs.

    Quadrant FVPs refine ``Z_far`` where a tile mixes near and far
    content, but a primitive must now be occluded in *every* quadrant
    its bounding box conservatively overlaps, and quadrants whose
    farthest visible point is NWOZ block depth-based prediction.  On
    this suite the two effects roughly cancel — evidence for the paper's
    choice of a single 4-byte FVP per tile.
    """
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    scheduler = make_scheduler(jobs)
    try:
        for alias in benchmarks:
            stream = benchmark_stream(alias, config)
            for label, flag in (("tile", False), ("2x2-subtile", True)):
                gpu = GPU(config, _evr_features(subtile_fvp=flag),
                          scheduler=scheduler)
                result = gpu.render_stream(stream)
                stats = result.total_stats()
                rows.append([
                    alias,
                    label,
                    stats.predicted_occluded / max(stats.predictions_made, 1),
                    result.redundant_tile_rate(),
                    result.shaded_fragments_per_pixel(),
                ])
    finally:
        scheduler.close()
    return ExperimentResult(
        "Ablation A4",
        "FVP granularity: per-tile (paper) vs 2x2 sub-tile",
        ["benchmark", "granularity", "pred-occluded", "tiles skipped",
         "frags/px"],
        rows,
    )


def _slab_scene(config: GPUConfig, draw_order: str) -> Scene3D:
    """Mutually-occluding slabs along the view axis (pure WOZ depth
    complexity, no tile redundancy)."""
    boxes = []
    for index in range(5):
        # Farther slabs are smaller, so each is fully hidden behind the
        # nearer ones: the configuration EVR's single-Z_far FVP detects.
        side = 5.0 - 0.6 * index
        boxes.append(
            BoxSpec(
                center=Vec3(0.0, 2.0, -2.0 * index),
                size=Vec3(side, side, 0.5),
                color=Vec4(1.0 - index / 5.0, 0.2, index / 5.0, 1.0),
                motion=LinearOscillation(Vec3(0.2, 0.0, 0.0),
                                         period_frames=16, phase=index),
                name=f"slab{index}",
            )
        )
    return Scene3D(
        config.screen_width, config.screen_height,
        boxes=boxes, ground_size=0.0, translucents=(), hud=None,
        camera_eye=Vec3(0.0, 2.0, 10.0), camera_target=Vec3(0.0, 2.0, 0.0),
        draw_order=draw_order,
    )


def ablation_draw_order(config: Optional[GPUConfig] = None,
                        jobs: Optional[int] = None) -> ExperimentResult:
    """Submission-order sensitivity, with and without EVR reordering.

    The baseline's shaded-fragment count should swing wildly between
    front-to-back and back-to-front submission, while EVR's reordering
    should flatten the difference — order-insensitivity is the point of
    Algorithm 1.
    """
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    spread: dict = {}
    scheduler = make_scheduler(jobs)
    try:
        for order in ("front_to_back", "submission", "back_to_front"):
            stream = _slab_scene(config, order).stream(config.frames)
            for mode, label in (("baseline", "baseline"),
                                ("evr-reorder-only", "evr")):
                result = GPU(config, mode,
                             scheduler=scheduler).render_stream(stream)
                frags = result.shaded_fragments_per_pixel()
                rows.append([order, label, frags])
                spread.setdefault(label, []).append(frags)
    finally:
        scheduler.close()
    summary = {
        f"{label}_spread": max(values) - min(values)
        for label, values in spread.items()
    }
    return ExperimentResult(
        "Ablation A3",
        "Draw-order sensitivity of shaded fragments per pixel",
        ["submission order", "mode", "frags/px"],
        rows,
        summary=summary,
    )
