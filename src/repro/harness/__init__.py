"""Experiment harness: runs benchmarks and regenerates the paper's figures.

* :mod:`repro.harness.runner` — run one benchmark under one pipeline mode
  and distill a :class:`RunMetrics` record.
* :mod:`repro.harness.experiments` — one function per paper table/figure,
  each returning a structured result and able to print the same rows the
  paper plots.
* :mod:`repro.harness.tables` — plain-text table rendering.
"""

from .alternatives import culling_alternatives
from .balance import pipeline_balance_report
from .timeseries import FrameRecord, frame_series, write_csv
from .report import paper_vs_measured, render_report
from .runner import RunMetrics, run_benchmark, run_suite
from .tables import format_table
from .ablations import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
    ablation_subtile,
)
from .experiments import (
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    table2_parameters,
    table3_suite,
)

__all__ = [
    "RunMetrics",
    "run_benchmark",
    "run_suite",
    "format_table",
    "table2_parameters",
    "table3_suite",
    "figure6_energy",
    "figure7_time",
    "figure8_overshading",
    "figure9_redundant_tiles",
    "figure10_energy_vs_re",
    "figure11_time_vs_re",
    "ablation_prediction_point",
    "ablation_history",
    "ablation_draw_order",
    "ablation_subtile",
    "paper_vs_measured",
    "render_report",
    "pipeline_balance_report",
    "culling_alternatives",
    "FrameRecord",
    "frame_series",
    "write_csv",
]
