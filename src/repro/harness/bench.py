"""``repro bench``: backend throughput benchmarking and regression gating.

Measures two things per kernel backend, on a preset workload:

1. **End-to-end pipeline throughput** — a full :meth:`GPU.render_stream`
   run under the paper's EVR configuration, with the observability
   tracer attached: frames/sec, simulated cache operations/sec and the
   per-phase wall-time breakdown (geometry/raster/schedule/execute/
   reduce spans).  This number is dominated by the memory-system
   *simulation* (an inherently sequential cache model), so backends
   differ by modest factors here — that is the honest Amdahl story.

2. **Fragment-kernel throughput** — the hot path the backend seam
   actually abstracts.  The preset's real per-tile display lists are
   captured from a pipeline run, then replayed through the backend's
   :func:`prepare_tile`/``fragments`` kernel exactly as
   :meth:`TileJob.run` drives it under a depth-prepass variant
   (z-prepass/oracle): fragments are requested once for the depth-only
   pass and once for shading.  ``fragments_per_second`` counts the
   fragments delivered across both passes.  This is the ``>= 10x``
   headline metric for the numpy backend.

The emitted ``BENCH_<preset>.json`` also records the
``fragments_per_second`` ratio between backends.  Because the ratio
compares two measurements from the same process on the same machine,
it is far more stable across hardware than absolute numbers — the CI
perf-smoke job gates on it via :func:`check_bench_regression`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import GPUConfig
from ..engine.scheduler import SerialScheduler
from ..engine.tile_job import TileJob
from ..errors import ConfigError
from ..kernels import available_backends, resolve_backend
from ..kernels.tile_geometry import tile_origin, valid_mask
from ..memsys import MemorySystem, create_memory_system
from ..memsys.ops import (
    EndFrameOp,
    FBLoadOp,
    FlushOp,
    MemOps,
    PBReadOp,
    PBWriteOp,
    TextureOp,
    VertexOp,
    VertexRangeOp,
    replay_memory_trace,
)
from ..obs.events import MetricSample, get_bus
from ..obs.profile import phase_breakdown
from ..obs.trace import ChromeTracer, tracing
from ..pipeline import GPU
from ..scenes import benchmark_stream, scaled_world_stream


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchPreset:
    """One named bench workload (resolution, frames, geometry load)."""

    name: str
    description: str
    width: int
    height: int
    frames: int
    workload: str            # Table III alias, or "scaled" for the
    num_boxes: int = 0       # scaled-up world scene (num_boxes props)

    def config(self) -> GPUConfig:
        return GPUConfig(screen_width=self.width,
                         screen_height=self.height,
                         frames=self.frames)

    def stream(self):
        config = self.config()
        if self.workload == "scaled":
            return scaled_world_stream(config, num_boxes=self.num_boxes)
        return benchmark_stream(self.workload, config)


BENCH_PRESETS: Dict[str, BenchPreset] = {
    preset.name: preset
    for preset in (
        BenchPreset("tiny", "CI smoke: tib at thumbnail resolution",
                    width=64, height=48, frames=4, workload="tib"),
        BenchPreset("default", "tib at the repo's default resolution",
                    width=192, height=160, frames=10, workload="tib"),
        BenchPreset("scaled",
                    "geometry-scaled world scene: deep display lists",
                    width=192, height=160, frames=10, workload="scaled",
                    num_boxes=96),
        BenchPreset("paper", "tib at the paper's 1196x768 over 60 frames",
                    width=1196, height=768, frames=60, workload="tib"),
    )
}

#: Depth-prepass access pattern: one depth-only pass plus one shading
#: pass per entry, as in TileJob.run with z_prepass/oracle_z.
SWEEP_PASSES = 2


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

class _CaptureScheduler(SerialScheduler):
    """Serial scheduler that also keeps every job it executed."""

    def __init__(self) -> None:
        super().__init__()
        self.jobs: List[TileJob] = []

    def map(self, fn, items):
        self.jobs.extend(items)
        return super().map(fn, items)


class _TraceRecorder(MemorySystem):
    """A scalar memory system that also records its op stream.

    Captures the run's complete memory traffic — geometry-side vertex
    and Parameter Buffer writes as well as the replayed raster tile
    traces — as one flat :class:`MemOps` list for the memsys replay
    sweep.  Frame boundaries are recorded (``end_frame`` traffic is part
    of replay cost); stat resets are not, so replaying the trace once
    yields lifetime counters both implementations must agree on.
    """

    def __init__(self, config: GPUConfig):
        super().__init__(config)
        self.ops = MemOps()
        self._in_range = False

    def fetch_vertex(self, vertex_index, vertex_bytes=48):
        # The scalar range loop re-enters here per vertex; the range op
        # already covers those, so don't record them twice.
        if not self._in_range:
            self.ops.append(VertexOp(vertex_index, vertex_bytes))
        super().fetch_vertex(vertex_index, vertex_bytes)

    def fetch_vertex_range(self, start, count, vertex_bytes=48):
        self.ops.append(VertexRangeOp(start, count, vertex_bytes))
        self._in_range = True
        try:
            super().fetch_vertex_range(start, count, vertex_bytes)
        finally:
            self._in_range = False

    def parameter_buffer_write(self, offset, size):
        self.ops.append(PBWriteOp(offset, size))
        super().parameter_buffer_write(offset, size)

    def parameter_buffer_read(self, offset, size):
        self.ops.append(PBReadOp(offset, size))
        super().parameter_buffer_read(offset, size)

    def texture_batch(self, texture_id, texture_size, u, v,
                      samples_per_fragment=1, bilinear=True):
        if u.size and samples_per_fragment > 0 and bilinear:
            self.ops.append(TextureOp(texture_id, texture_size, u, v,
                                      samples_per_fragment))
        super().texture_batch(texture_id, texture_size, u, v,
                              samples_per_fragment, bilinear)

    def framebuffer_flush(self, num_bytes):
        self.ops.append(FlushOp(num_bytes))
        super().framebuffer_flush(num_bytes)

    def framebuffer_load(self, num_bytes):
        self.ops.append(FBLoadOp(num_bytes))
        super().framebuffer_load(num_bytes)

    def end_frame(self):
        self.ops.append(EndFrameOp())
        super().end_frame()


def machine_info() -> Dict[str, object]:
    """The hardware/runtime facts a bench number is meaningless without."""
    cpu_model = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "cpu_model": cpu_model,
        "cpu_count": os.cpu_count(),
    }


def _cache_ops(run_result) -> int:
    """Total simulated cache-unit accesses over the run."""
    total = 0
    for frame in run_result.frames:
        for units in (frame.geometry.units, frame.raster.units):
            for counters in units.values():
                total += counters.get("accesses", 0)
    return total


def _pipeline_measurement(preset: BenchPreset, backend: str,
                          record_trace: bool = False) -> Dict:
    """One full EVR-mode run: frames/sec, cache ops/sec, phase times.

    With ``record_trace`` the run's memory system is a scalar
    :class:`_TraceRecorder` and the measurement carries the captured op
    stream under ``"_trace"`` (recording is per-op list appends — noise
    next to the scalar model it rides on).
    """
    config = preset.config()
    capture = _CaptureScheduler()
    recorder = _TraceRecorder(config) if record_trace else None
    gpu = GPU(config, "evr", scheduler=capture, backend=backend,
              memory_system=recorder)
    tracer = ChromeTracer()
    start = time.perf_counter()
    with tracing(tracer):
        result = gpu.render_stream(preset.stream())
    elapsed = time.perf_counter() - start
    stats = result.total_stats(warmup=0)
    cache_ops = _cache_ops(result)
    measurement = {
        "wall_seconds": elapsed,
        "frames": len(result.frames),
        "frames_per_second": len(result.frames) / elapsed,
        "fragments_shaded": stats.fragments_shaded,
        "cache_ops": cache_ops,
        "cache_ops_per_second": cache_ops / elapsed,
        "phases": phase_breakdown(tracer),
        "raster_phase_ms": _raster_phase_totals(tracer),
        "_jobs": capture.jobs,
    }
    if recorder is not None:
        measurement["_trace"] = recorder.ops
    return measurement


def _raster_phase_totals(tracer: ChromeTracer) -> Dict[str, float]:
    """Total milliseconds per raster-engine span (schedule/execute/reduce)."""
    totals: Dict[str, float] = {}
    for event in tracer.spans(category="raster"):
        totals[event["name"]] = (totals.get(event["name"], 0.0)
                                 + event["dur"] / 1e3)
    return totals


def _sweep_once(jobs: Sequence[TileJob], backend: str) -> int:
    """One full kernel sweep: replay every captured display list through
    ``backend``'s ``prepare_tile``/``fragments`` exactly as
    :meth:`TileJob.run` drives it under a depth-prepass variant (each
    entry's fragments requested ``SWEEP_PASSES`` times)."""
    kernels = resolve_backend(backend)
    fragments = 0
    for job in jobs:
        config = job.config
        x0, y0 = tile_origin(job.tile_x, job.tile_y,
                             config.tile_width, config.tile_height)
        valid = valid_mask(job.tile_x, job.tile_y,
                           config.tile_width, config.tile_height,
                           config.screen_width, config.screen_height)
        batch = kernels.prepare_tile(
            job.entries, x0, y0,
            config.tile_width, config.tile_height, valid,
        )
        for _ in range(SWEEP_PASSES):
            for index in range(len(job.entries)):
                frag = batch.fragments(index)
                if frag is not None:
                    fragments += frag.count
    return fragments


def _kernel_sweeps(jobs: Sequence[TileJob], backends: Sequence[str],
                   repeat: int) -> Dict[str, Dict]:
    """Best-of-``repeat`` kernel throughput for every backend.

    The backends are timed *interleaved*, round by round, so each
    round's measurements are adjacent in time and see the same machine
    state (CPU-frequency drift over a minutes-long bench otherwise
    dominates the cross-backend ratio — the number CI gates on).
    """
    fragments = 0
    for backend in backends:           # warm-up (also the fragment count)
        fragments = _sweep_once(jobs, backend)
    best = {backend: float("inf") for backend in backends}
    for _ in range(max(1, repeat)):
        for backend in backends:
            start = time.perf_counter()
            _sweep_once(jobs, backend)
            best[backend] = min(best[backend],
                                time.perf_counter() - start)
    entries = sum(len(job.entries) for job in jobs)
    return {
        backend: {
            "sweep_passes": SWEEP_PASSES,
            "jobs": len(jobs),
            "entries": entries,
            "fragments": fragments,
            "best_seconds": best[backend],
            "fragments_per_second": fragments / best[backend],
        }
        for backend in backends
    }


def _memsys_replay_once(ops: MemOps, config: GPUConfig,
                        backend: str) -> Dict[str, object]:
    """Replay the recorded trace through a fresh ``backend`` memory
    system; returns the elapsed seconds and the final snapshot."""
    memory = create_memory_system(config, backend)
    start = time.perf_counter()
    replay_memory_trace(ops, memory)
    memory.drain()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "snapshot": memory.snapshot(),
            "dram_cycles": memory.dram.cycles()}


def _memsys_sweeps(ops: MemOps, config: GPUConfig,
                   backends: Sequence[str], repeat: int) -> Dict[str, Dict]:
    """Best-of-``repeat`` memory-trace replay throughput per backend.

    The memory-system analogue of :func:`_kernel_sweeps`: the same
    recorded op stream replays through every implementation,
    interleaved round by round for ratio stability.  The warm-up round
    doubles as the bit-identity check — every backend must produce the
    scalar reference's exact counters and DRAM cycle count, so a bench
    can never report a speedup for a model that diverged.
    """
    reference: Optional[Dict[str, object]] = None
    cache_ops = 0
    for backend in backends:           # warm-up + bit-identity check
        outcome = _memsys_replay_once(ops, config, backend)
        if reference is None:
            reference = outcome
            cache_ops = sum(
                counters.get("accesses", 0)
                for counters in outcome["snapshot"].values()
            )
        elif (outcome["snapshot"] != reference["snapshot"]
                or outcome["dram_cycles"] != reference["dram_cycles"]):
            raise AssertionError(
                f"memsys backend {backend!r} diverged from "
                f"{backends[0]!r} on the replayed trace"
            )
    best = {backend: float("inf") for backend in backends}
    for _ in range(max(1, repeat)):
        for backend in backends:
            best[backend] = min(
                best[backend],
                _memsys_replay_once(ops, config, backend)["seconds"],
            )
    return {
        backend: {
            "trace_ops": len(ops),
            "cache_ops": cache_ops,
            "best_seconds": best[backend],
            "cache_ops_per_second": cache_ops / best[backend],
        }
        for backend in backends
    }


def run_bench(preset_name: str,
              backends: Optional[Sequence[str]] = None,
              repeat: int = 3) -> Dict:
    """Run the bench for ``preset_name`` and return the result record."""
    try:
        preset = BENCH_PRESETS[preset_name]
    except KeyError:
        raise ConfigError(
            f"unknown bench preset {preset_name!r}; "
            f"known: {sorted(BENCH_PRESETS)}"
        ) from None
    chosen = tuple(backends) if backends else available_backends()
    bus = get_bus()

    results: Dict[str, Dict] = {}
    jobs: Optional[List[TileJob]] = None
    trace: Optional[MemOps] = None
    for backend in chosen:
        # The scalar run doubles as the trace recorder: traffic is
        # backend-independent (bit-identical contract), so one captured
        # stream feeds every memsys sweep.
        record_trace = backend == "python"
        measurement = _pipeline_measurement(preset, backend,
                                            record_trace=record_trace)
        captured = measurement.pop("_jobs")
        if jobs is None:
            # Display lists are backend-independent (bit-identical
            # contract); capture once and reuse for every sweep.
            jobs = captured
        if record_trace:
            trace = measurement.pop("_trace")
        results[backend] = measurement
        if bus.enabled:
            bus.emit(MetricSample(
                name=f"bench.{backend}.frames_per_second",
                value=measurement["frames_per_second"]))
            bus.emit(MetricSample(
                name=f"bench.{backend}.cache_ops_per_second",
                value=measurement["cache_ops_per_second"]))
    for backend, sweep in _kernel_sweeps(jobs, chosen, repeat).items():
        results[backend]["kernel_sweep"] = sweep
    if trace is not None:
        sweeps = _memsys_sweeps(trace, preset.config(), chosen, repeat)
        for backend, sweep in sweeps.items():
            results[backend]["memsys_sweep"] = sweep

    record = {
        "preset": preset.name,
        "description": preset.description,
        "config": {
            "width": preset.width,
            "height": preset.height,
            "frames": preset.frames,
            "workload": preset.workload,
            "num_boxes": preset.num_boxes,
        },
        "mode": "evr",
        "python_version": platform.python_version(),
        "machine": machine_info(),
        "backends": results,
    }
    if "python" in results and "numpy" in results:
        scalar = results["python"]
        batched = results["numpy"]
        record["speedup"] = {
            "fragments_per_second": (
                batched["kernel_sweep"]["fragments_per_second"]
                / scalar["kernel_sweep"]["fragments_per_second"]
            ),
            "frames_per_second": (
                batched["frames_per_second"] / scalar["frames_per_second"]
            ),
        }
        if "memsys_sweep" in scalar and "memsys_sweep" in batched:
            record["speedup"]["cache_ops_per_second"] = (
                batched["memsys_sweep"]["cache_ops_per_second"]
                / scalar["memsys_sweep"]["cache_ops_per_second"]
            )
        if bus.enabled:
            for name, value in sorted(record["speedup"].items()):
                bus.emit(MetricSample(name=f"bench.speedup.{name}",
                                      value=value))
    return record


# ---------------------------------------------------------------------------
# Output and regression gating
# ---------------------------------------------------------------------------

def write_bench_json(record: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_bench_summary(record: Dict) -> str:
    lines = [f"bench preset={record['preset']} mode={record['mode']} "
             f"({record['config']['width']}x{record['config']['height']}"
             f" x{record['config']['frames']} frames)"]
    for backend, result in record["backends"].items():
        sweep = result["kernel_sweep"]
        line = (
            f"  {backend:>7}: {sweep['fragments_per_second']:>12,.0f}"
            f" frags/s (kernel)  "
            f"{result['frames_per_second']:6.2f} frames/s  "
            f"{result['cache_ops_per_second']:>11,.0f} cache ops/s"
        )
        memsys = result.get("memsys_sweep")
        if memsys:
            line += (f"  {memsys['cache_ops_per_second']:>11,.0f}"
                     f" replay ops/s")
        lines.append(line)
    speedup = record.get("speedup")
    if speedup:
        line = (
            f"  numpy/python speedup: "
            f"{speedup['fragments_per_second']:.2f}x kernel frags/s, "
            f"{speedup['frames_per_second']:.2f}x frames/s"
        )
        if "cache_ops_per_second" in speedup:
            line += (f", {speedup['cache_ops_per_second']:.2f}x "
                     f"memsys replay")
        lines.append(line)
    return "\n".join(lines)


def check_bench_regression(record: Dict, baseline_path: str,
                           tolerance: float = 0.2) -> List[str]:
    """Compare a fresh bench against a committed baseline JSON.

    Gates on the backend *speedup ratios* (machine-independent), not on
    absolute throughput: a regression is the numpy/python
    ``fragments_per_second`` (kernel sweep) or ``cache_ops_per_second``
    (memsys replay sweep) ratio dropping more than ``tolerance``
    (fractional) below the baseline's.  Returns failure messages,
    empty when the bench is clean.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    base = baseline.get("speedup", {})
    new = record.get("speedup", {})
    if base.get("fragments_per_second") is None \
            or new.get("fragments_per_second") is None:
        failures.append(
            "baseline or current record lacks a numpy/python speedup "
            "(both backends must be benched to gate)"
        )
        return failures
    gated = [("fragments_per_second", "kernel fragments/sec")]
    if base.get("cache_ops_per_second") is not None:
        gated.append(("cache_ops_per_second", "memsys replay ops/sec"))
    for key, label in gated:
        base_speedup = base[key]
        new_speedup = new.get(key)
        if new_speedup is None:
            failures.append(
                f"current record lacks the {label} speedup the baseline "
                f"gates on"
            )
            continue
        floor = base_speedup * (1.0 - tolerance)
        if new_speedup < floor:
            failures.append(
                f"{label} speedup regressed: {new_speedup:.2f}x "
                f"< {floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures
