"""Run benchmarks under pipeline modes and distill metrics.

This is the outer loop of the evaluation: for a (benchmark, mode) pair it
builds the scene stream, renders it on a fresh GPU instance and extracts
the scalar metrics every figure consumes.  Runs are memoized per harness
instance because several figures share the same underlying runs (e.g.
Figures 6, 7, 10 and 11 all need BASELINE/RE/EVR runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..pipeline import GPU, PipelineMode, RunResult
from ..scenes import benchmark_names, benchmark_stream


@dataclass(frozen=True)
class RunMetrics:
    """Scalar summary of one (benchmark, mode) run.

    Attributes:
        benchmark: benchmark alias.
        mode: pipeline mode value string.
        geometry_cycles: steady-state Geometry Pipeline cycles.
        raster_cycles: steady-state Raster Pipeline cycles.
        energy_joules: total steady-state energy.
        energy_breakdown: component -> joules.
        shaded_fragments_per_pixel: Figure 8's metric.
        redundant_tile_rate: Figure 9's metric.
        overshading_kills: Early-Z discarded fragments.
        predicted_occluded_rate: fraction of (primitive, tile) pairs EVR
            predicted occluded (0 for non-EVR modes).
    """

    benchmark: str
    mode: str
    geometry_cycles: float
    raster_cycles: float
    energy_joules: float
    energy_breakdown: Dict[str, float]
    shaded_fragments_per_pixel: float
    redundant_tile_rate: float
    overshading_kills: int
    predicted_occluded_rate: float

    @property
    def total_cycles(self) -> float:
        return self.geometry_cycles + self.raster_cycles


def metrics_from_result(benchmark: str, mode: PipelineMode,
                        result: RunResult) -> RunMetrics:
    """Distill a :class:`RunResult` into a :class:`RunMetrics`."""
    cycles = result.total_cycles()
    energy = result.total_energy()
    stats = result.total_stats()
    return RunMetrics(
        benchmark=benchmark,
        mode=mode.value,
        geometry_cycles=cycles.geometry,
        raster_cycles=cycles.raster,
        energy_joules=energy.total,
        energy_breakdown=energy.as_dict(),
        shaded_fragments_per_pixel=result.shaded_fragments_per_pixel(),
        redundant_tile_rate=result.redundant_tile_rate(),
        overshading_kills=stats.early_z_kills,
        predicted_occluded_rate=(
            stats.predicted_occluded / stats.predictions_made
            if stats.predictions_made
            else 0.0
        ),
    )


def run_benchmark(
    benchmark: str,
    mode: PipelineMode,
    config: Optional[GPUConfig] = None,
    frames: Optional[int] = None,
) -> RunMetrics:
    """Render one benchmark under one mode and return its metrics."""
    config = config or GPUConfig.default()
    stream = benchmark_stream(benchmark, config, frames)
    gpu = GPU(config, mode)
    result = gpu.render_stream(stream)
    return metrics_from_result(benchmark, mode, result)


class SuiteRunner:
    """Memoizing runner shared by all experiment functions."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 frames: Optional[int] = None):
        self.config = config or GPUConfig.default()
        self.frames = frames
        self._cache: Dict[Tuple[str, PipelineMode], RunMetrics] = {}

    def run(self, benchmark: str, mode: PipelineMode) -> RunMetrics:
        key = (benchmark, mode)
        if key not in self._cache:
            self._cache[key] = run_benchmark(
                benchmark, mode, self.config, self.frames
            )
        return self._cache[key]

    def run_many(
        self, benchmarks: Sequence[str], modes: Sequence[PipelineMode]
    ) -> Dict[Tuple[str, str], RunMetrics]:
        out: Dict[Tuple[str, str], RunMetrics] = {}
        for benchmark in benchmarks:
            for mode in modes:
                out[(benchmark, mode.value)] = self.run(benchmark, mode)
        return out


def run_suite(
    modes: Sequence[PipelineMode],
    config: Optional[GPUConfig] = None,
    frames: Optional[int] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[Tuple[str, str], RunMetrics]:
    """Run (a subset of) the 20-benchmark suite under several modes."""
    runner = SuiteRunner(config, frames)
    return runner.run_many(benchmarks or benchmark_names(), modes)
