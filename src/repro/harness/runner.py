"""Run benchmarks under pipeline modes and distill metrics.

This is the outer loop of the evaluation: for a (benchmark, mode) pair it
builds the scene stream, renders it on a fresh GPU instance and extracts
the scalar metrics every figure consumes.  Three layers of reuse stack on
top of each other:

* an in-memory memo per :class:`SuiteRunner` instance (several figures
  share the same underlying runs — Figures 6, 7, 10 and 11 all need
  BASELINE/RE/EVR);
* an optional on-disk cache under ``.repro_cache/`` keyed by the run
  spec's canonical content hash plus (benchmark, mode, code-version) —
  see :func:`repro.engine.diskcache.run_cache_key` — so a *second
  invocation* of any figure script reuses the first one's runs without
  constructing a GPU;
* an optional :class:`~repro.engine.ProcessPoolScheduler` fan-out, so the
  independent (benchmark, mode) simulations of a suite sweep run in
  parallel (``--jobs N`` / ``REPRO_JOBS``).

When a retry policy or fault plan is armed (``--retries``,
``--job-timeout``, ``--inject-faults``) the fan-out additionally runs
under a :class:`~repro.resilience.ResilientScheduler`, each settled cell
is checkpointed to a crash-durable :class:`~repro.resilience.RunJournal`
(``--resume`` replays it), and permanently failed cells degrade to NaN
placeholders instead of aborting the sweep.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import GPUConfig
from ..engine.diskcache import DiskCache, run_cache_key
from ..engine.scheduler import Scheduler, make_scheduler
from ..errors import ConfigError
from ..obs.events import MetricSample, RunFinished, RunStarted, get_bus
from ..obs.profile import SchedulerProfiler
from ..obs.trace import get_tracer
from ..pipeline import GPU, RunResult
from ..resilience import (
    FaultPlan,
    JobFailure,
    ResilientScheduler,
    RetryPolicy,
    RunJournal,
)
from ..scenes import benchmark_names, benchmark_stream
from ..spec import RunSpec
from ..techniques import Technique, metric_extras, resolve_technique


class _NaNBreakdown(dict):
    """Energy breakdown of a failed run: every component reads as NaN,
    so figure arithmetic over a failed cell yields NaN instead of a
    ``KeyError`` — the cell renders as ``nan`` and is visibly broken."""

    def __missing__(self, key: str) -> float:
        return float("nan")


@dataclass(frozen=True)
class RunMetrics:
    """Scalar summary of one (benchmark, mode) run.

    Attributes:
        benchmark: benchmark alias.
        mode: pipeline mode value string.
        geometry_cycles: steady-state Geometry Pipeline cycles.
        raster_cycles: steady-state Raster Pipeline cycles.
        energy_joules: total steady-state energy.
        energy_breakdown: component -> joules.
        shaded_fragments_per_pixel: Figure 8's metric.
        redundant_tile_rate: Figure 9's metric.
        overshading_kills: Early-Z discarded fragments.
        predicted_occluded_rate: fraction of (primitive, tile) pairs EVR
            predicted occluded (0 for non-EVR modes).
        extra: technique-specific distilled metrics (the registry's
            metric extractors — e.g. ``hiz_culled`` for Hi-Z,
            ``dsr_reused_fragments`` for DSR); empty for techniques
            without extractors.
        error: empty for a real run; the failure description for a cell
            whose simulation failed permanently (graceful degradation —
            all numeric fields are then NaN).
    """

    benchmark: str
    mode: str
    geometry_cycles: float
    raster_cycles: float
    energy_joules: float
    energy_breakdown: Dict[str, float]
    shaded_fragments_per_pixel: float
    redundant_tile_rate: float
    overshading_kills: int
    predicted_occluded_rate: float
    extra: Dict[str, float] = field(default_factory=dict)
    error: str = ""

    @property
    def total_cycles(self) -> float:
        return self.geometry_cycles + self.raster_cycles

    @property
    def failed(self) -> bool:
        return bool(self.error)


def failed_metrics(benchmark: str, mode: Technique,
                   error: str) -> RunMetrics:
    """The NaN-valued placeholder for a cell that failed permanently."""
    nan = float("nan")
    return RunMetrics(
        benchmark=benchmark,
        mode=mode.value,
        geometry_cycles=nan,
        raster_cycles=nan,
        energy_joules=nan,
        energy_breakdown=_NaNBreakdown(),
        shaded_fragments_per_pixel=nan,
        redundant_tile_rate=nan,
        overshading_kills=0,
        predicted_occluded_rate=nan,
        extra={},
        error=error,
    )


def metrics_from_result(benchmark: str, mode: Technique,
                        result: RunResult) -> RunMetrics:
    """Distill a :class:`RunResult` into a :class:`RunMetrics`."""
    cycles = result.total_cycles()
    energy = result.total_energy()
    stats = result.total_stats()
    return RunMetrics(
        benchmark=benchmark,
        mode=mode.value,
        geometry_cycles=cycles.geometry,
        raster_cycles=cycles.raster,
        energy_joules=energy.total,
        energy_breakdown=energy.as_dict(),
        shaded_fragments_per_pixel=result.shaded_fragments_per_pixel(),
        redundant_tile_rate=result.redundant_tile_rate(),
        overshading_kills=stats.early_z_kills,
        predicted_occluded_rate=(
            stats.predicted_occluded / stats.predictions_made
            if stats.predictions_made
            else 0.0
        ),
        extra=metric_extras(mode.value, result),
    )


def run_benchmark(
    benchmark: str,
    mode: object,
    config: Optional[GPUConfig] = None,
    frames: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    spec: Optional[RunSpec] = None,
) -> RunMetrics:
    """Render one benchmark under one mode and return its metrics.

    ``spec`` supplies the feature overrides and cost/energy parameters
    (defaults reproduce the historical behaviour exactly); an explicit
    ``config``/``frames`` wins over ``spec.gpu`` for callers that sweep
    around a fixed spec.  ``scheduler`` optionally fans the per-frame
    tile work out (see :mod:`repro.engine`); metrics are identical
    whichever scheduler runs.
    """
    mode = resolve_technique(mode)
    if spec is None:
        spec = RunSpec.from_config(config or GPUConfig.default())
    config = config or spec.gpu
    bus = get_bus()
    started = time.perf_counter()
    if bus.enabled:
        bus.emit(RunStarted(
            benchmark=benchmark, mode=mode.value,
            frames=frames if frames is not None
            else getattr(config, "frames", 0),
        ))
    with get_tracer().span(f"run {benchmark}:{mode.value}",
                           category="harness"):
        stream = benchmark_stream(benchmark, config, frames)
        gpu = GPU.from_spec(spec, mode, scheduler=scheduler, config=config)
        result = gpu.render_stream(stream)
        metrics = metrics_from_result(benchmark, mode, result)
    if bus.enabled:
        bus.emit(RunFinished(
            benchmark=benchmark, mode=mode.value,
            seconds=time.perf_counter() - started,
            frames=len(result.frames),
            fragments=result.total_stats().fragments_shaded,
        ))
    return metrics


def _run_pair(
    payload: Tuple[str, Technique, RunSpec]
) -> RunMetrics:
    """Process-pool entry point for one (benchmark, mode) simulation."""
    benchmark, mode, spec = payload
    return run_benchmark(benchmark, mode, spec=spec)


class SuiteRunner:
    """Memoizing runner shared by all experiment functions.

    The runner's identity is a :class:`~repro.spec.RunSpec`: disk-cache
    and journal keys derive from ``spec.spec_hash()`` plus the simulator
    code version, and execution policy (jobs, retries, faults, resume)
    defaults from the spec's scheduler/resilience sections.  The legacy
    keyword arguments still work — they are folded into an equivalent
    spec — and explicit keywords win over the spec's sections.

    Args:
        config: simulation configuration (default: ``spec.gpu``, or the
            scaled config when no spec is given).
        frames: frame-count override; folded into the spec's GPU config
            (``benchmark_stream`` reads the count from there).
        jobs: worker processes for suite-level fan-out; ``None``/1 runs
            serially, exactly as before.
        cache_dir: directory of the persistent run cache; ``None``
            disables disk caching (the in-memory memo always applies).
        profiler: optional :class:`~repro.obs.SchedulerProfiler`
            attached to the suite scheduler (observability only).
        retry_policy: arming this (or ``fault_plan``) routes the suite
            fan-out through a :class:`~repro.resilience.ResilientScheduler`
            — per-job timeouts, bounded retries, pool rebuilds and
            graceful degradation.  ``None`` (default) preserves the
            historical fail-fast behaviour bit-for-bit.
        fault_plan: deterministic fault injection for the suite jobs
            (``--inject-faults``); implies a default retry policy.
        journal_dir: directory for the crash-durable checkpoint journal;
            ``None`` disables journaling.
        resume: replay completed cells from the journal before running
            (``--resume``); ignored when ``journal_dir`` is None.
        strict: when True the caller is expected to exit non-zero if
            :attr:`failures` is non-empty; the runner itself always
            completes the sweep either way.
        spec: the declarative experiment spec this runner executes.
            ``None`` builds one from the legacy keyword arguments.
    """

    def __init__(self, config: Optional[GPUConfig] = None,
                 frames: Optional[int] = None,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 profiler: Optional[SchedulerProfiler] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 journal_dir: Optional[str] = None,
                 resume: bool = False,
                 strict: bool = False,
                 spec: Optional[RunSpec] = None):
        if spec is None:
            spec = RunSpec.from_config(config or GPUConfig.default())
        gpu = config if config is not None else spec.gpu
        if frames is not None:
            gpu = gpu.scaled(frames=frames)
        if gpu != spec.gpu:
            spec = dataclasses.replace(spec, gpu=gpu)
        if jobs is None:
            jobs = spec.scheduler.jobs
        if retry_policy is None and fault_plan is None:
            retry_policy = spec.resilience.retry_policy()
            fault_plan = spec.resilience.fault_plan()
        self.spec = spec
        self.config = spec.gpu
        self.jobs = jobs or 1
        self.profiler = profiler
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.strict = strict or spec.resilience.strict
        resume = resume or spec.resilience.resume
        self._cache: Dict[Tuple[str, Technique], RunMetrics] = {}
        self._disk = DiskCache(cache_dir) if cache_dir else None
        self._scheduler: Optional[Scheduler] = None
        self.cache_hits = 0
        self.cache_misses = 0
        self.journal_hits = 0
        self.failures: Dict[Tuple[str, Technique], JobFailure] = {}
        self._journal: Optional[RunJournal] = None
        if journal_dir:
            self._journal = RunJournal.for_spec(journal_dir, spec)
            if resume:
                self._replay_journal()
            self._journal.open(fresh=not resume)

    @property
    def resilient(self) -> bool:
        """Whether suite fan-out runs under the resilient scheduler."""
        return self.retry_policy is not None or self.fault_plan is not None

    # -- lifecycle ----------------------------------------------------------

    def _suite_scheduler(self) -> Scheduler:
        if self._scheduler is None:
            scheduler = make_scheduler(self.jobs, profiler=self.profiler)
            if self.resilient:
                scheduler = ResilientScheduler(
                    scheduler,
                    policy=self.retry_policy,
                    fault_plan=self.fault_plan,
                )
            self._scheduler = scheduler
        return self._scheduler

    def close(self) -> None:
        """Release pooled workers and the journal (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "SuiteRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoint journal --------------------------------------------------

    def _replay_journal(self) -> None:
        """Seed the in-memory memo from the journal's completed cells."""
        assert self._journal is not None
        for (benchmark, mode_value), entry in self._journal.load().items():
            if entry.get("status") != "ok":
                continue  # failed cells are retried on resume
            try:
                mode = resolve_technique(mode_value)
                metrics = RunMetrics(**entry["metrics"])
            except (KeyError, TypeError, ValueError, ConfigError):
                continue  # journal written by an incompatible layout
            self._cache[(benchmark, mode)] = metrics
            self.journal_hits += 1

    # -- disk cache ---------------------------------------------------------

    def _disk_key(self, benchmark: str, mode: Technique) -> str:
        return run_cache_key(self.spec, benchmark, mode.value)

    def _load_cached(self, benchmark: str,
                     mode: Technique) -> Optional[RunMetrics]:
        if self._disk is None:
            return None
        value = self._disk.get(self._disk_key(benchmark, mode))
        if isinstance(value, RunMetrics):
            self.cache_hits += 1
            return value
        return None

    def _store(self, key: Tuple[str, Technique],
               metrics: RunMetrics, to_disk: bool) -> None:
        self._cache[key] = metrics
        if to_disk and self._disk is not None:
            self._disk.put(self._disk_key(*key), metrics)
        if to_disk and self._journal is not None:
            self._journal.record_ok(key[0], key[1].value,
                                    dataclasses.asdict(metrics))

    def _record_failure(self, key: Tuple[str, Technique],
                        failure: JobFailure) -> None:
        """Graceful degradation: the cell completes as a NaN placeholder
        and the sweep carries on; ``--strict`` turns it into a non-zero
        exit at the CLI layer."""
        self.failures[key] = failure
        self._cache[key] = failed_metrics(key[0], key[1], failure.message)
        if self._journal is not None:
            self._journal.record_failed(key[0], key[1].value,
                                        failure.message)

    def cache_summary(self) -> str:
        """One-line disk-cache report for script output."""
        if self._disk is None:
            summary = "run cache: disabled"
        else:
            summary = (f"run cache: {self.cache_hits} hits, "
                       f"{self.cache_misses} misses "
                       f"({self._disk.directory})")
        if self.journal_hits:
            summary += f"; journal: {self.journal_hits} cells resumed"
        if self.failures:
            summary += f"; {len(self.failures)} cells FAILED"
        return summary

    def results(self) -> Dict[Tuple[str, Technique], RunMetrics]:
        """A snapshot of every memoized (benchmark, mode) result — the
        run ledger records these per invocation."""
        return dict(self._cache)

    def metrics_records(self) -> List[Dict[str, Any]]:
        """Every memoized run as a ``--metrics`` export record, plus one
        trailing summary record with the runner's cache counters."""
        records: List[Dict[str, Any]] = [
            {"record": "suite-run", **dataclasses.asdict(metrics)}
            for (_, _), metrics in sorted(
                self._cache.items(),
                key=lambda kv: (kv[0][0], kv[0][1].value),
            )
        ]
        records.append({
            "record": "suite-summary",
            "runs": len(self._cache),
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "journal_hits": self.journal_hits,
            "failures": len(self.failures),
            "failed_cells": sorted(
                f"{benchmark}:{mode.value}"
                for benchmark, mode in self.failures
            ),
        })
        return records

    # -- running ------------------------------------------------------------

    def run(self, benchmark: str, mode: object) -> RunMetrics:
        mode = resolve_technique(mode)
        key = (benchmark, mode)
        if key not in self._cache:
            cached = self._load_cached(benchmark, mode)
            if cached is not None:
                self._cache[key] = cached
            else:
                self.cache_misses += 1
                self._store(
                    key,
                    run_benchmark(benchmark, mode, spec=self.spec),
                    to_disk=True,
                )
        return self._cache[key]

    def run_many(
        self, benchmarks: Sequence[str], modes: Sequence[object]
    ) -> Dict[Tuple[str, str], RunMetrics]:
        """Run the (benchmark, mode) cross product, fanning uncached pairs
        out through the suite scheduler when ``jobs > 1``."""
        techniques = [resolve_technique(mode) for mode in modes]
        pairs = [(benchmark, mode) for benchmark in benchmarks
                 for mode in techniques]
        missing: List[Tuple[str, Technique]] = []
        for key in pairs:
            if key in self._cache:
                continue
            cached = self._load_cached(*key)
            if cached is not None:
                self._cache[key] = cached
            else:
                missing.append(key)

        if missing:
            self.cache_misses += len(missing)
            payloads = [
                (benchmark, mode, self.spec)
                for benchmark, mode in missing
            ]
            total = len(missing)
            settled = [0]  # suite-progress MetricSample numerator

            def _progress() -> None:
                settled[0] += 1
                bus = get_bus()
                if bus.enabled:
                    bus.emit(MetricSample(name="suite.progress",
                                          value=settled[0] / total))

            if self.resilient:
                # Supervised fan-out: each cell settles (and is
                # checkpointed) independently; a permanently failed
                # cell becomes a NaN placeholder instead of aborting
                # the sweep.
                def _settle(index: int, value: Any) -> None:
                    if isinstance(value, JobFailure):
                        self._record_failure(missing[index], value)
                    else:
                        self._store(missing[index], value, to_disk=True)
                    _progress()

                with get_tracer().span("suite.map", category="harness",
                                       runs=len(missing)):
                    self._suite_scheduler().map_resilient(
                        _run_pair, payloads, on_result=_settle
                    )
            elif self.jobs > 1 and len(missing) > 1:
                with get_tracer().span("suite.map", category="harness",
                                       runs=len(missing)):
                    results = self._suite_scheduler().map(
                        _run_pair, payloads
                    )
                for key, metrics in zip(missing, results):
                    self._store(key, metrics, to_disk=True)
                    _progress()
            else:
                for benchmark, mode in missing:
                    self._store(
                        (benchmark, mode),
                        run_benchmark(benchmark, mode, spec=self.spec),
                        to_disk=True,
                    )
                    _progress()

        return {
            (benchmark, mode.value): self._cache[(benchmark, mode)]
            for benchmark, mode in pairs
        }

    # Alias that reads naturally at figure-function call sites.
    prefetch = run_many


def run_suite(
    modes: Sequence[object],
    config: Optional[GPUConfig] = None,
    frames: Optional[int] = None,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    spec: Optional[RunSpec] = None,
) -> Dict[Tuple[str, str], RunMetrics]:
    """Run (a subset of) the 20-benchmark suite under several modes."""
    with SuiteRunner(config, frames, jobs=jobs, cache_dir=cache_dir,
                     spec=spec) as runner:
        return runner.run_many(benchmarks or benchmark_names(), modes)
