"""Plain-text table rendering for the experiment harness.

Every figure function prints its rows through :func:`format_table`, so the
bench targets produce output directly comparable with the paper's plots.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(cell: Cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row cells; floats are formatted to ``precision`` decimals.
        title: optional title line above the table.
        precision: decimal places for float cells.
    """
    rendered: List[List[str]] = [
        [_render_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(_line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(_line(row) for row in rendered)
    return "\n".join(parts)
