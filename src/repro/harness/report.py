"""Paper-vs-measured reporting: the EXPERIMENTS.md generator.

Holds the paper's reported numbers for every reproduced quantity and
builds a markdown report comparing them with a fresh run of the harness.
``python -m repro report`` regenerates the comparison on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..spec import RunSpec
from .experiments import (
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
)
from .runner import SuiteRunner


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim from the paper's evaluation section."""

    experiment: str
    metric: str
    paper_value: float
    extract: Callable[[SuiteRunner], float]
    note: str = ""


def _claims() -> List[PaperClaim]:
    return [
        PaperClaim(
            "Figure 6", "average energy vs baseline (lower is better)",
            0.57,
            lambda r: figure6_energy(r).summary["avg_energy_norm"],
            "paper: 43% average energy savings",
        ),
        PaperClaim(
            "Figure 7", "average execution time vs baseline",
            0.61,
            lambda r: figure7_time(r).summary["avg_time_norm"],
            "paper: 39% average speedup",
        ),
        PaperClaim(
            "Figure 8", "overshading reduction on 3D apps",
            0.20,
            lambda r: figure8_overshading(r).summary[
                "avg_overshading_reduction"
            ],
            "paper: EVR removes 20% of shaded fragments, close to oracle",
        ),
        PaperClaim(
            "Figure 9", "average redundant tiles detected by EVR",
            0.54,
            lambda r: figure9_redundant_tiles(r).summary["avg_evr"],
            "paper: 54% of tiles skipped",
        ),
        PaperClaim(
            "Figure 9", "EVR advantage over baseline RE",
            0.05,
            lambda r: figure9_redundant_tiles(r).summary["evr_minus_re"],
            "paper: 5% more redundant tiles than RE",
        ),
        PaperClaim(
            "Figure 10", "average energy vs the RE GPU",
            0.90,
            lambda r: figure10_energy_vs_re(r).summary["avg_energy_vs_re"],
            "paper: 10% average energy reduction over RE",
        ),
        PaperClaim(
            "Figure 11", "average RE-only execution time vs baseline",
            0.85,
            lambda r: figure11_time_vs_re(r).summary["avg_re_norm"],
            "paper: RE alone helps less, and loses on 300/mst "
            "(value estimated from the figure)",
        ),
    ]


def paper_vs_measured(
    runner: Optional[SuiteRunner] = None,
) -> List[Dict[str, object]]:
    """Evaluate every claim; returns rows of experiment/metric/paper/
    measured/ratio."""
    runner = runner or SuiteRunner(spec=RunSpec.preset("scaled"))
    rows: List[Dict[str, object]] = []
    for claim in _claims():
        measured = claim.extract(runner)
        rows.append({
            "experiment": claim.experiment,
            "metric": claim.metric,
            "paper": claim.paper_value,
            "measured": measured,
            "note": claim.note,
        })
    return rows


def render_report(runner: Optional[SuiteRunner] = None) -> str:
    """Markdown paper-vs-measured table plus the per-figure tables."""
    runner = runner or SuiteRunner(spec=RunSpec.preset("scaled"))
    spec = runner.spec
    lines = [
        "# Paper vs measured",
        "",
        # Provenance: the exact spec that produced these numbers, so a
        # report is reproducible from its own header.
        f"spec_hash: `{spec.spec_hash()}`",
        f"gpu: {spec.gpu.screen_width}x{spec.gpu.screen_height}, "
        f"{spec.gpu.frames} frames, tile "
        f"{spec.gpu.tile_width}x{spec.gpu.tile_height}",
        "",
        "| experiment | metric | paper | measured |",
        "| --- | --- | ---: | ---: |",
    ]
    for row in paper_vs_measured(runner):
        lines.append(
            f"| {row['experiment']} | {row['metric']} | "
            f"{row['paper']:.3f} | {row['measured']:.3f} |"
        )
    lines.append("")
    for figure in (
        figure6_energy,
        figure7_time,
        figure8_overshading,
        figure9_redundant_tiles,
        figure10_energy_vs_re,
        figure11_time_vs_re,
    ):
        lines.append("```")
        lines.append(figure(runner).render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
