"""Pipeline-balance report: which stage bounds each benchmark.

Runs a benchmark, feeds its steady-state counters to the queue-aware
balance model (:mod:`repro.timing.queues`), and reports per-stage
utilization and the bottleneck for both pipelines — the analysis an
architect would do before sizing queues or adding fragment processors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import GPUConfig
from ..pipeline import GPU
from ..scenes import benchmark_stream
from ..techniques import resolve_technique
from ..timing import geometry_balance, raster_balance
from .experiments import ExperimentResult


def pipeline_balance_report(
    config: Optional[GPUConfig] = None,
    benchmarks: Sequence[str] = ("cde", "tib", "300"),
    mode: object = "baseline",
) -> ExperimentResult:
    """Bottleneck analysis across benchmarks under one pipeline mode."""
    mode = resolve_technique(mode)
    config = config or GPUConfig.default()
    rows: List[List[object]] = []
    for alias in benchmarks:
        stream = benchmark_stream(alias, config)
        result = GPU(config, mode).render_stream(stream)
        stats = result.total_stats()
        for pipeline_name, balance in (
            ("geometry", geometry_balance(stats, config)),
            ("raster", raster_balance(stats, config)),
        ):
            bottleneck = balance.bottleneck
            overlap = (
                balance.pipelined_cycles / balance.additive_cycles
                if balance.additive_cycles
                else 0.0
            )
            rows.append([
                alias,
                pipeline_name,
                bottleneck.name,
                bottleneck.busy_cycles,
                balance.pipelined_cycles,
                overlap,
            ])
    return ExperimentResult(
        "Analysis",
        f"Pipeline balance under {mode.value}: bottleneck stage and "
        "queue-mediated overlap",
        ["benchmark", "pipeline", "bottleneck", "bottleneck cycles",
         "pipelined cycles", "pipelined/additive"],
        rows,
    )
