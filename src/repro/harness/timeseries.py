"""Per-frame time series: inspect how a run evolves frame by frame.

The paper reports run aggregates; for debugging and for studying EVR's
warm-up transient it is useful to see each frame's cycles, energy and
skip counts.  :func:`frame_series` extracts them from a
:class:`repro.pipeline.RunResult`; :func:`write_csv` dumps them for
external plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import IO, List, Union

from ..pipeline import RunResult

_COLUMNS = [
    "frame",
    "geometry_cycles",
    "raster_cycles",
    "total_cycles",
    "energy_joules",
    "tiles_rendered",
    "tiles_skipped",
    "fragments_shaded",
    "early_z_kills",
    "predicted_occluded",
    "signature_poisons",
]


@dataclass(frozen=True)
class FrameRecord:
    """One frame's scalar metrics."""

    frame: int
    geometry_cycles: float
    raster_cycles: float
    energy_joules: float
    tiles_rendered: int
    tiles_skipped: int
    fragments_shaded: int
    early_z_kills: int
    predicted_occluded: int
    signature_poisons: int

    @property
    def total_cycles(self) -> float:
        return self.geometry_cycles + self.raster_cycles

    def as_row(self) -> List[object]:
        return [
            self.frame,
            self.geometry_cycles,
            self.raster_cycles,
            self.total_cycles,
            self.energy_joules,
            self.tiles_rendered,
            self.tiles_skipped,
            self.fragments_shaded,
            self.early_z_kills,
            self.predicted_occluded,
            self.signature_poisons,
        ]


def frame_series(result: RunResult) -> List[FrameRecord]:
    """Per-frame metrics for every frame of the run (no warm-up cut)."""
    assert result.cost_model is not None
    assert result.energy_model is not None
    records: List[FrameRecord] = []
    for frame_result in result.frames:
        stats = frame_result.stats
        geometry = result.cost_model.geometry_cycles(
            stats, frame_result.geometry_dram_cycles
        )
        raster = result.cost_model.raster_cycles(
            stats, frame_result.raster_dram_cycles
        )
        energy = result.energy_model.compute(
            stats,
            frame_result.merged_snapshot(),
            geometry + raster,
            evr_enabled=result.features.evr_hardware,
            re_enabled=result.features.rendering_elimination,
        )
        records.append(
            FrameRecord(
                frame=frame_result.index,
                geometry_cycles=geometry,
                raster_cycles=raster,
                energy_joules=energy.total,
                tiles_rendered=stats.tiles_rendered,
                tiles_skipped=stats.tiles_skipped,
                fragments_shaded=stats.fragments_shaded,
                early_z_kills=stats.early_z_kills,
                predicted_occluded=stats.predicted_occluded,
                signature_poisons=stats.signature_poisons,
            )
        )
    return records


def write_csv(records: List[FrameRecord],
              file: Union[str, IO[str]]) -> None:
    """Write the series as CSV (header + one row per frame)."""

    def _write(handle: IO[str]) -> None:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for record in records:
            writer.writerow(record.as_row())

    if isinstance(file, str):
        with open(file, "w", newline="") as handle:
            _write(handle)
    else:
        _write(file)
