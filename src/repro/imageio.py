"""Minimal image export: write rendered frames as PPM/PGM files.

The simulator's framebuffers are float RGBA numpy arrays; PPM is the
simplest portable way to inspect them without adding dependencies.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np


def to_rgb8(image: np.ndarray) -> np.ndarray:
    """Convert a float RGBA (H, W, 4) framebuffer to uint8 RGB (H, W, 3)."""
    if image.ndim != 3 or image.shape[2] < 3:
        raise ValueError(f"expected (H, W, >=3) image, got {image.shape}")
    rgb = np.clip(image[:, :, :3], 0.0, 1.0)
    return (rgb * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path: Union[str, "os.PathLike[str]"], image: np.ndarray) -> None:
    """Write a framebuffer to a binary PPM (P6) file.

    Args:
        path: output file path.
        image: float RGBA (H, W, 4) or uint8 RGB (H, W, 3) array.
    """
    if image.dtype != np.uint8:
        image = to_rgb8(image)
    height, width = image.shape[:2]
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(image[:, :, :3].tobytes())


def frame_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Absolute per-pixel difference, for visual regression debugging."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return np.abs(a - b)
