"""Mesh builders used by the synthetic scenes.

A :class:`Mesh` is just an ordered list of object-space triangles.  The
builders here cover everything the benchmark scenes need: textured quads
(2D sprites, backgrounds, HUD panels), subdivided grids (terrain), and
boxes (simple 3D props).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..math3d import Vec2, Vec3, Vec4
from .triangle import Triangle
from .vertex import Vertex, VertexAttributes


@dataclass
class Mesh:
    """An ordered collection of triangles sharing a purpose."""

    triangles: List[Triangle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.triangles)

    def __iter__(self):
        return iter(self.triangles)

    def extend(self, other: "Mesh") -> "Mesh":
        self.triangles.extend(other.triangles)
        return self

    def recolored(self, color: Vec4) -> "Mesh":
        """A copy of the mesh with every vertex color replaced."""
        out = Mesh()
        for tri in self.triangles:
            out.triangles.append(
                Triangle(
                    *(
                        Vertex(v.position, v.attributes.with_color(color))
                        for v in tri.vertices
                    )
                )
            )
        return out


def _vertex(x: float, y: float, z: float, color: Vec4, u: float, v: float,
            normal: Vec3) -> Vertex:
    return Vertex(Vec3(x, y, z), VertexAttributes(color=color, uv=Vec2(u, v),
                                                  normal=normal))


def quad(
    corner: Vec3,
    edge_u: Vec3,
    edge_v: Vec3,
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0),
) -> Mesh:
    """A parallelogram from ``corner`` spanned by ``edge_u`` x ``edge_v``.

    Triangulated as two counter-clockwise triangles with the normal along
    ``edge_u x edge_v``.
    """
    normal = edge_u.cross(edge_v)
    length = normal.length()
    normal = normal.normalized() if length > 0 else Vec3(0.0, 0.0, 1.0)
    p00 = corner
    p10 = corner + edge_u
    p01 = corner + edge_v
    p11 = corner + edge_u + edge_v
    v00 = Vertex(p00, VertexAttributes(color, Vec2(0, 0), normal))
    v10 = Vertex(p10, VertexAttributes(color, Vec2(1, 0), normal))
    v01 = Vertex(p01, VertexAttributes(color, Vec2(0, 1), normal))
    v11 = Vertex(p11, VertexAttributes(color, Vec2(1, 1), normal))
    return Mesh([Triangle(v00, v10, v11), Triangle(v00, v11, v01)])


def screen_quad(
    x: float,
    y: float,
    width: float,
    height: float,
    z: float = 0.0,
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0),
) -> Mesh:
    """An axis-aligned quad in the z = ``z`` plane, for 2D scenes.

    The 2D benchmarks draw these through an orthographic camera, so x/y
    are world units that map linearly to the screen.
    """
    return quad(Vec3(x, y, z), Vec3(width, 0.0, 0.0), Vec3(0.0, height, 0.0),
                color)


def sprite_quad(
    center: Vec2,
    size: Vec2,
    z: float = 0.0,
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0),
) -> Mesh:
    """A sprite centered at ``center`` — sugar over :func:`screen_quad`."""
    return screen_quad(
        center.x - size.x / 2.0,
        center.y - size.y / 2.0,
        size.x,
        size.y,
        z=z,
        color=color,
    )


def grid_mesh(
    corner: Vec3,
    edge_u: Vec3,
    edge_v: Vec3,
    divisions_u: int,
    divisions_v: int,
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0),
) -> Mesh:
    """A parallelogram subdivided into ``divisions_u x divisions_v`` cells.

    Produces ``2 * divisions_u * divisions_v`` triangles; used for terrain
    and large backgrounds so that primitives do not all span every tile.
    """
    if divisions_u <= 0 or divisions_v <= 0:
        raise ValueError("grid divisions must be positive")
    mesh = Mesh()
    du = edge_u * (1.0 / divisions_u)
    dv = edge_v * (1.0 / divisions_v)
    for j in range(divisions_v):
        for i in range(divisions_u):
            cell_corner = corner + du * float(i) + dv * float(j)
            mesh.extend(quad(cell_corner, du, dv, color))
    return mesh


_BOX_FACES: Sequence[Tuple[Vec3, Vec3, Vec3]] = (
    # (corner, edge_u, edge_v) per face, unit cube centered at origin
    (Vec3(-0.5, -0.5, 0.5), Vec3(1, 0, 0), Vec3(0, 1, 0)),    # front
    (Vec3(0.5, -0.5, -0.5), Vec3(-1, 0, 0), Vec3(0, 1, 0)),   # back
    (Vec3(0.5, -0.5, 0.5), Vec3(0, 0, -1), Vec3(0, 1, 0)),    # right
    (Vec3(-0.5, -0.5, -0.5), Vec3(0, 0, 1), Vec3(0, 1, 0)),   # left
    (Vec3(-0.5, 0.5, 0.5), Vec3(1, 0, 0), Vec3(0, 0, -1)),    # top
    (Vec3(-0.5, -0.5, -0.5), Vec3(1, 0, 0), Vec3(0, 0, 1)),   # bottom
)


def box_mesh(
    center: Vec3,
    size: Vec3,
    color: Vec4 = Vec4(1.0, 1.0, 1.0, 1.0),
) -> Mesh:
    """An axis-aligned box (12 triangles) centered at ``center``."""
    mesh = Mesh()
    for corner, edge_u, edge_v in _BOX_FACES:
        scaled_corner = Vec3(
            center.x + corner.x * size.x,
            center.y + corner.y * size.y,
            center.z + corner.z * size.z,
        )
        scaled_u = Vec3(edge_u.x * size.x, edge_u.y * size.y, edge_u.z * size.z)
        scaled_v = Vec3(edge_v.x * size.x, edge_v.y * size.y, edge_v.z * size.z)
        mesh.extend(quad(scaled_corner, scaled_u, scaled_v, color))
    return mesh
