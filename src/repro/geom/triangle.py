"""Triangles in object space and in window (screen) space.

The geometry pipeline turns :class:`Triangle` (three object-space vertices)
into :class:`ScreenTriangle` (window-space positions, depth in [0, 1], and
the metadata the binner and rasterizer need: owning draw command, opacity
and whether the primitive writes the Z-buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from ..math3d import Vec2
from .vertex import Vertex, VertexAttributes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..commands.state import RenderState


@dataclass(frozen=True)
class Triangle:
    """An object-space triangle, counter-clockwise front-facing."""

    v0: Vertex
    v1: Vertex
    v2: Vertex

    @property
    def vertices(self) -> Tuple[Vertex, Vertex, Vertex]:
        return (self.v0, self.v1, self.v2)

    def pack(self) -> bytes:
        """Byte encoding of all vertex data, for RE signatures."""
        return self.v0.pack() + self.v1.pack() + self.v2.pack()


@dataclass(frozen=True)
class ScreenTriangle:
    """A window-space triangle ready for binning and rasterization.

    Attributes:
        xy: three window-space (x, y) positions in pixels.
        z: three window-space depths in [0, 1] (0 = near plane).
        attributes: the three vertices' interpolatable attributes.
        command_id: index of the draw command that produced the triangle.
        primitive_id: index of the triangle within the frame.
        state: the owning command's render state (travels with the
            primitive through the Parameter Buffer, as in hardware).
        signature_bytes: the canonical attribute encoding fed to the
            Rendering Elimination CRC.
    """

    xy: Tuple[Vec2, Vec2, Vec2]
    z: Tuple[float, float, float]
    attributes: Tuple[VertexAttributes, VertexAttributes, VertexAttributes]
    command_id: int
    primitive_id: int
    state: "RenderState"
    signature_bytes: bytes

    @property
    def writes_z(self) -> bool:
        """True for WOZ primitives (depth-test + depth-write)."""
        return self.state.writes_z

    @property
    def opaque(self) -> bool:
        """True when fragments fully replace what is behind them."""
        return self.state.opaque

    @property
    def z_near(self) -> float:
        """Depth of the closest vertex — the paper's conservative bound.

        A WOZ primitive is predicted occluded in a tile only when even its
        closest point is farther than the tile's previous-frame FVP.
        """
        return min(self.z)

    @property
    def z_far(self) -> float:
        """Depth of the farthest vertex."""
        return max(self.z)

    @property
    def z_centroid(self) -> float:
        """Mean vertex depth (the aggressive prediction-point ablation)."""
        return sum(self.z) / 3.0

    def signed_area(self) -> float:
        """Twice the signed area; positive for counter-clockwise winding
        in a y-down window coordinate system.
        """
        a, b, c = self.xy
        return (b - a).cross(c - a)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) in window coordinates."""
        xs = (self.xy[0].x, self.xy[1].x, self.xy[2].x)
        ys = (self.xy[0].y, self.xy[1].y, self.xy[2].y)
        return (min(xs), min(ys), max(xs), max(ys))

    def overlapped_tiles(
        self, tile_w: int, tile_h: int, tiles_x: int, tiles_y: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Conservative tile overlap from the bounding box.

        This is what the Polygon List Builder uses: real binners test the
        bounding box (sometimes refined by edge tests); bounding-box
        binning may list a tile the triangle does not actually touch,
        which the rasterizer later resolves to zero fragments, exactly as
        in hardware.
        """
        min_x, min_y, max_x, max_y = self.bounding_box()
        first_tx = max(0, int(min_x) // tile_w)
        first_ty = max(0, int(min_y) // tile_h)
        last_tx = min(tiles_x - 1, int(max_x) // tile_w)
        last_ty = min(tiles_y - 1, int(max_y) // tile_h)
        if last_tx < first_tx or last_ty < first_ty:
            return ()
        return tuple(
            (tx, ty)
            for ty in range(first_ty, last_ty + 1)
            for tx in range(first_tx, last_tx + 1)
        )

    @property
    def attribute_count(self) -> int:
        """Number of scalar attributes the rasterizer interpolates.

        Used by the timing model (the paper's rasterizer processes 16
        attributes per cycle): 3 position scalars + 4 color + 2 uv +
        3 normal per vertex-averaged fragment setup.
        """
        return 12
