"""Geometry data model: vertices, triangles and mesh builders.

Object-space geometry (built by scenes, consumed by the geometry pipeline)
uses :class:`Vertex`/:class:`Triangle`.  After vertex shading and primitive
assembly the pipeline works on :class:`ScreenTriangle` objects, which carry
window-space positions and interpolation-ready attributes.
"""

from .vertex import VertexAttributes, Vertex
from .triangle import ScreenTriangle, Triangle
from .mesh import (
    Mesh,
    grid_mesh,
    box_mesh,
    quad,
    screen_quad,
    sprite_quad,
)

__all__ = [
    "VertexAttributes",
    "Vertex",
    "Triangle",
    "ScreenTriangle",
    "Mesh",
    "quad",
    "screen_quad",
    "sprite_quad",
    "grid_mesh",
    "box_mesh",
]
