"""Vertices and their attributes.

Attributes matter twice in this system: they are interpolated to produce
fragment colors, and their *byte representation* feeds the CRC32 signatures
of Rendering Elimination.  :meth:`VertexAttributes.pack` therefore defines a
canonical quantized encoding so that two attribute sets are CRC-equal iff
they are value-equal after quantization — exactly the property the paper's
Signature Buffer relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..math3d import Vec2, Vec3, Vec4

_PACK_FORMAT = struct.Struct("<4f2f3f")


@dataclass(frozen=True)
class VertexAttributes:
    """Per-vertex data besides position: color, texture coords, normal."""

    color: Vec4 = field(default_factory=lambda: Vec4(1.0, 1.0, 1.0, 1.0))
    uv: Vec2 = field(default_factory=Vec2)
    normal: Vec3 = field(default_factory=lambda: Vec3(0.0, 0.0, 1.0))

    def pack(self) -> bytes:
        """Canonical byte encoding used for RE signatures."""
        return _PACK_FORMAT.pack(
            self.color.x,
            self.color.y,
            self.color.z,
            self.color.w,
            self.uv.x,
            self.uv.y,
            self.normal.x,
            self.normal.y,
            self.normal.z,
        )

    def with_color(self, color: Vec4) -> "VertexAttributes":
        return VertexAttributes(color=color, uv=self.uv, normal=self.normal)


@dataclass(frozen=True)
class Vertex:
    """An object-space vertex: a position plus interpolatable attributes."""

    position: Vec3
    attributes: VertexAttributes = field(default_factory=VertexAttributes)

    def pack(self) -> bytes:
        """Byte encoding (position + attributes) for RE signatures."""
        pos = struct.pack("<3f", self.position.x, self.position.y, self.position.z)
        return pos + self.attributes.pack()
