"""4x4 matrices and the standard graphics transforms.

Matrices are row-major tuples of 16 floats.  ``Mat4 @ Mat4`` composes
transforms and ``Mat4 @ Vec4`` applies one to a homogeneous point, matching
the column-vector convention used by OpenGL (``M @ v`` transforms ``v``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union, overload

from .vector import Vec3, Vec4

_IDENTITY = (
    1.0, 0.0, 0.0, 0.0,
    0.0, 1.0, 0.0, 0.0,
    0.0, 0.0, 1.0, 0.0,
    0.0, 0.0, 0.0, 1.0,
)


@dataclass(frozen=True)
class Mat4:
    """An immutable row-major 4x4 matrix."""

    m: Tuple[float, ...] = _IDENTITY

    def __post_init__(self) -> None:
        if len(self.m) != 16:
            raise ValueError(f"Mat4 needs 16 elements, got {len(self.m)}")

    @classmethod
    def identity(cls) -> "Mat4":
        return cls(_IDENTITY)

    @classmethod
    def from_rows(
        cls,
        r0: Tuple[float, float, float, float],
        r1: Tuple[float, float, float, float],
        r2: Tuple[float, float, float, float],
        r3: Tuple[float, float, float, float],
    ) -> "Mat4":
        return cls(tuple(r0) + tuple(r1) + tuple(r2) + tuple(r3))

    def row(self, i: int) -> Tuple[float, float, float, float]:
        base = 4 * i
        return (self.m[base], self.m[base + 1], self.m[base + 2], self.m[base + 3])

    def column(self, j: int) -> Tuple[float, float, float, float]:
        return (self.m[j], self.m[j + 4], self.m[j + 8], self.m[j + 12])

    @overload
    def __matmul__(self, other: "Mat4") -> "Mat4": ...

    @overload
    def __matmul__(self, other: Vec4) -> Vec4: ...

    def __matmul__(self, other: Union["Mat4", Vec4]) -> Union["Mat4", Vec4]:
        if isinstance(other, Vec4):
            v = other.as_tuple()
            out = []
            for i in range(4):
                r = self.row(i)
                out.append(
                    r[0] * v[0] + r[1] * v[1] + r[2] * v[2] + r[3] * v[3]
                )
            return Vec4(*out)
        if isinstance(other, Mat4):
            values = []
            for i in range(4):
                r = self.row(i)
                for j in range(4):
                    c = other.column(j)
                    values.append(
                        r[0] * c[0] + r[1] * c[1] + r[2] * c[2] + r[3] * c[3]
                    )
            return Mat4(tuple(values))
        return NotImplemented

    def transform_point(self, p: Vec3) -> Vec3:
        """Apply to a point (w=1) and divide by the resulting w."""
        return (self @ p.to_vec4(1.0)).perspective_divide()

    def transform_direction(self, d: Vec3) -> Vec3:
        """Apply to a direction (w=0); translation is ignored."""
        return (self @ d.to_vec4(0.0)).xyz()

    def transpose(self) -> "Mat4":
        return Mat4(tuple(self.m[4 * j + i] for i in range(4) for j in range(4)))


def translate(offset: Vec3) -> Mat4:
    """Translation by ``offset``."""
    return Mat4.from_rows(
        (1.0, 0.0, 0.0, offset.x),
        (0.0, 1.0, 0.0, offset.y),
        (0.0, 0.0, 1.0, offset.z),
        (0.0, 0.0, 0.0, 1.0),
    )


def scale(factors: Vec3) -> Mat4:
    """Anisotropic scale by ``factors``."""
    return Mat4.from_rows(
        (factors.x, 0.0, 0.0, 0.0),
        (0.0, factors.y, 0.0, 0.0),
        (0.0, 0.0, factors.z, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )


def rotate_x(radians: float) -> Mat4:
    c, s = math.cos(radians), math.sin(radians)
    return Mat4.from_rows(
        (1.0, 0.0, 0.0, 0.0),
        (0.0, c, -s, 0.0),
        (0.0, s, c, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )


def rotate_y(radians: float) -> Mat4:
    c, s = math.cos(radians), math.sin(radians)
    return Mat4.from_rows(
        (c, 0.0, s, 0.0),
        (0.0, 1.0, 0.0, 0.0),
        (-s, 0.0, c, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )


def rotate_z(radians: float) -> Mat4:
    c, s = math.cos(radians), math.sin(radians)
    return Mat4.from_rows(
        (c, -s, 0.0, 0.0),
        (s, c, 0.0, 0.0),
        (0.0, 0.0, 1.0, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )


def perspective(fov_y_radians: float, aspect: float, near: float, far: float) -> Mat4:
    """Right-handed perspective projection onto [-1, 1]^3 NDC.

    Matches ``gluPerspective``: the camera looks down -Z, depth maps to
    [-1, 1] with near -> -1.
    """
    if near <= 0 or far <= near:
        raise ValueError("require 0 < near < far")
    f = 1.0 / math.tan(fov_y_radians / 2.0)
    return Mat4.from_rows(
        (f / aspect, 0.0, 0.0, 0.0),
        (0.0, f, 0.0, 0.0),
        (0.0, 0.0, (far + near) / (near - far), 2.0 * far * near / (near - far)),
        (0.0, 0.0, -1.0, 0.0),
    )


def orthographic(
    left: float, right: float, bottom: float, top: float, near: float, far: float
) -> Mat4:
    """Orthographic projection onto [-1, 1]^3 NDC (``glOrtho``)."""
    if right == left or top == bottom or far == near:
        raise ValueError("degenerate orthographic volume")
    return Mat4.from_rows(
        (2.0 / (right - left), 0.0, 0.0, -(right + left) / (right - left)),
        (0.0, 2.0 / (top - bottom), 0.0, -(top + bottom) / (top - bottom)),
        (0.0, 0.0, -2.0 / (far - near), -(far + near) / (far - near)),
        (0.0, 0.0, 0.0, 1.0),
    )


def look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4:
    """View matrix placing the camera at ``eye`` looking at ``target``."""
    forward = (target - eye).normalized()
    side = forward.cross(up).normalized()
    true_up = side.cross(forward)
    rotation = Mat4.from_rows(
        (side.x, side.y, side.z, 0.0),
        (true_up.x, true_up.y, true_up.z, 0.0),
        (-forward.x, -forward.y, -forward.z, 0.0),
        (0.0, 0.0, 0.0, 1.0),
    )
    return rotation @ translate(-eye)


def viewport(width: int, height: int) -> Mat4:
    """NDC [-1, 1]^3 -> window coordinates.

    x, y map to pixels ([0, width] x [0, height], y pointing down as in
    framebuffer convention) and z maps to [0, 1] with 0 at the near plane —
    the depth range stored in the Z-buffer.
    """
    half_w = width / 2.0
    half_h = height / 2.0
    return Mat4.from_rows(
        (half_w, 0.0, 0.0, half_w),
        (0.0, -half_h, 0.0, half_h),
        (0.0, 0.0, 0.5, 0.5),
        (0.0, 0.0, 0.0, 1.0),
    )
