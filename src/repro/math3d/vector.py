"""Immutable 2/3/4-component float vectors.

The vectors are plain frozen dataclasses rather than numpy arrays because
individual vertices flow through the pipeline as Python objects; bulk
per-fragment math is done with numpy inside the rasterizer instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Vec2:
    """A 2D vector (screen-space positions, texture coordinates)."""

    x: float = 0.0
    y: float = 0.0

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, s: float) -> "Vec2":
        return Vec2(self.x * s, self.y * s)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Vec2") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """The z-component of the 3D cross product (signed area x2)."""
        return self.x * other.y - self.y * other.x

    def length(self) -> float:
        return math.sqrt(self.dot(self))

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Vec3:
    """A 3D vector (object/world-space positions, normals, RGB colors)."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, s: float) -> "Vec3":
        return Vec3(self.x * s, self.y * s, self.z * s)

    __rmul__ = __mul__

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length(self) -> float:
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vec3":
        """Return a unit-length copy.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        length = self.length()
        return Vec3(self.x / length, self.y / length, self.z / length)

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)

    def to_vec4(self, w: float = 1.0) -> "Vec4":
        return Vec4(self.x, self.y, self.z, w)


@dataclass(frozen=True)
class Vec4:
    """A homogeneous 4D vector (clip-space positions, RGBA colors)."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    w: float = 1.0

    def __add__(self, other: "Vec4") -> "Vec4":
        return Vec4(
            self.x + other.x,
            self.y + other.y,
            self.z + other.z,
            self.w + other.w,
        )

    def __sub__(self, other: "Vec4") -> "Vec4":
        return Vec4(
            self.x - other.x,
            self.y - other.y,
            self.z - other.z,
            self.w - other.w,
        )

    def __mul__(self, s: float) -> "Vec4":
        return Vec4(self.x * s, self.y * s, self.z * s, self.w * s)

    __rmul__ = __mul__

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z
        yield self.w

    def dot(self, other: "Vec4") -> float:
        return (
            self.x * other.x
            + self.y * other.y
            + self.z * other.z
            + self.w * other.w
        )

    def perspective_divide(self) -> Vec3:
        """Clip space -> normalized device coordinates.

        Raises:
            ZeroDivisionError: when ``w`` is zero (degenerate vertex).
        """
        return Vec3(self.x / self.w, self.y / self.w, self.z / self.w)

    def xyz(self) -> Vec3:
        return Vec3(self.x, self.y, self.z)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x, self.y, self.z, self.w)
