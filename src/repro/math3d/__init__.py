"""Small 3D math library: vectors, 4x4 matrices and common transforms.

This is the substrate used by the geometry pipeline's vertex shading stage
and by the scene generators.  It deliberately avoids depending on the rest
of the library so that it can be tested in isolation.
"""

from .vector import Vec2, Vec3, Vec4
from .matrix import (
    Mat4,
    look_at,
    orthographic,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    translate,
    viewport,
)

__all__ = [
    "Vec2",
    "Vec3",
    "Vec4",
    "Mat4",
    "translate",
    "scale",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "perspective",
    "orthographic",
    "look_at",
    "viewport",
]
